(* Tests for the lib/obs tracer, exporters and trace-replay checker:
   ring-buffer semantics, the zero-cost disabled path, hand-built traces
   that must be rejected with precise diagnostics, and real traces from
   short runs of all four schemes that must pass clean. *)

module Trace = Obs.Trace
module Check = Obs.Check
module Tagged = Smr_core.Tagged
module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng

let cleanup () =
  Trace.disable ();
  Trace.reset ()

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- tracer -------------------------------------------------------------- *)

let test_wraparound () =
  Trace.enable ~capacity:16 ();
  for i = 0 to 49 do
    Trace.emit Trace.Alloc i 0 0
  done;
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  Alcotest.(check int) "kept" 16 (Array.length snap.Trace.events);
  Alcotest.(check int) "dropped" 34 snap.Trace.dropped;
  (* the newest events survive, in order *)
  Array.iteri
    (fun j (e : Trace.event) ->
      Alcotest.(check int) "uid" (34 + j) e.Trace.uid)
    snap.Trace.events;
  Alcotest.(check int) "horizon = oldest kept seq" 34 snap.Trace.complete_from

let test_multi_domain_merge () =
  let per_domain = 1000 and domains = 4 in
  Trace.enable ~capacity:4096 ();
  let ds =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Trace.emit Trace.Retire ((d * per_domain) + i) d 0
            done))
  in
  Array.iter Domain.join ds;
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  Alcotest.(check int) "all events kept" (domains * per_domain)
    (Array.length snap.Trace.events);
  Alcotest.(check int) "nothing dropped" 0 snap.Trace.dropped;
  (* seq is a total order: strictly increasing and gap-free after merge *)
  Array.iteri
    (fun j (e : Trace.event) -> Alcotest.(check int) "seq" j e.Trace.seq)
    snap.Trace.events

let test_disabled_records_nothing_allocates_nothing () =
  cleanup ();
  for i = 0 to 99 do
    Trace.emit Trace.Retire i 0 0
  done;
  Alcotest.(check int) "nothing recorded" 0
    (Array.length (Trace.snapshot ()).Trace.events);
  let w0 = Gc.minor_words () in
  for i = 0 to 99_999 do
    Trace.emit Trace.Retire i 0 0
  done;
  let w1 = Gc.minor_words () in
  (* budget far below one word per emit: a boxing bug would cost >= 100k *)
  Alcotest.(check bool) "no allocation on disabled emit" true (w1 -. w0 < 256.)

let test_raw_roundtrip () =
  Trace.enable ~capacity:16 ();
  for i = 0 to 49 do
    Trace.emit Trace.Step i (i + 1) 2
  done;
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  let path = Filename.temp_file "obs_trace" ".raw" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.write_raw oc snap;
      close_out oc;
      let ic = open_in path in
      let back = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Trace.read_raw ic) in
      Alcotest.(check int) "dropped" snap.Trace.dropped back.Trace.dropped;
      Alcotest.(check int) "horizon" snap.Trace.complete_from
        back.Trace.complete_from;
      Alcotest.(check bool) "events round-trip" true
        (snap.Trace.events = back.Trace.events))

(* --- checker on hand-built traces ---------------------------------------- *)

let ev seq kind ~dom ~uid ?(a = 0) ?(b = 0) () : Trace.event =
  { Trace.seq; ts = seq; dom; kind; uid; a; b }

let expect_violation name rule ~uid events k =
  match Check.run events with
  | Ok _ -> Alcotest.failf "%s: expected a %s violation, trace passed" name rule
  | Error (v :: _ as vs) ->
      Alcotest.(check string) (name ^ " rule") rule v.Check.v_rule;
      Alcotest.(check int) (name ^ " uid") uid v.Check.v_uid;
      k vs
  | Error [] -> assert false

let test_reject_free_before_invalidate () =
  (* uids 1 and 2 unlinked as one batch; only 1 is invalidated before 1 is
     freed, so the whole-batch rule must name the missing member (2). *)
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Alloc ~dom:0 ~uid:2 ();
      ev 2 Trace.Unlink ~dom:0 ~uid:1 ~a:7 ();
      ev 3 Trace.Unlink ~dom:0 ~uid:2 ~a:7 ();
      ev 4 Trace.Invalidate ~dom:0 ~uid:1 ~a:7 ();
      ev 5 Trace.Free ~dom:0 ~uid:1 ();
    |]
  in
  expect_violation "free-before-invalidate" "invalidate-before-free" ~uid:1
    events (fun (v :: _) ->
      Alcotest.(check bool) "diagnostic names the missing member" true
        (contains v.Check.v_detail "missing: 2");
      Alcotest.(check int) "at the Free" 5 v.Check.v_seq)
  [@warning "-8"]

let test_reject_free_in_protect_window () =
  (* dom 1 holds a validated protection on uid 1 when dom 0 frees it *)
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Protect ~dom:1 ~uid:1 ();
      ev 2 Trace.Retire ~dom:0 ~uid:1 ();
      ev 3 Trace.Free ~dom:0 ~uid:1 ();
      ev 4 Trace.Unprotect ~dom:1 ~uid:1 ();
    |]
  in
  expect_violation "protect-window" "protect-window" ~uid:1 events
    (fun (v :: _) ->
      Alcotest.(check bool) "diagnostic names the protecting domain" true
        (contains v.Check.v_detail "dom 1");
      Alcotest.(check int) "at the Free" 3 v.Check.v_seq)
  [@warning "-8"]

let test_clean_trace_passes () =
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Protect ~dom:1 ~uid:1 ();
      ev 2 Trace.Retire ~dom:0 ~uid:1 ();
      ev 3 Trace.Unprotect ~dom:1 ~uid:1 ();
      ev 4 Trace.Free ~dom:0 ~uid:1 ();
    |]
  in
  match Check.run events with
  | Ok s ->
      Alcotest.(check int) "allocs" 1 s.Check.allocs;
      Alcotest.(check int) "frees" 1 s.Check.frees;
      Alcotest.(check int) "protects" 1 s.Check.protects
  | Error (v :: _) ->
      Alcotest.failf "clean trace rejected: %s" v.Check.v_detail
  | Error [] -> assert false

let test_step_tag_bits_pin_tagged () =
  (* the checker's notion of the invalid bit must be Tagged's *)
  let step b = [| ev 0 Trace.Step ~dom:0 ~uid:1 ~a:2 ~b () |] in
  (match Check.run (step Tagged.invalid_bit) with
  | Ok _ -> Alcotest.fail "step over the invalid bit passed"
  | Error (v :: _) ->
      Alcotest.(check string) "rule" "step-from-invalidated" v.Check.v_rule
  | Error [] -> assert false);
  match Check.run (step Tagged.deleted_bit) with
  | Ok _ -> () (* deletion tags are fine to traverse *)
  | Error (v :: _) -> Alcotest.failf "deleted-tag step rejected: %s" v.Check.v_detail
  | Error [] -> assert false

let test_phantom_uid_rejected () =
  (* the checker's phantom uid must be Mem's (and not the -1 no-node Step
     sentinel); any event carrying it must flag, even below no horizon *)
  Alcotest.(check int) "pinned to Mem.phantom_uid" Smr_core.Mem.phantom_uid
    Check.phantom_uid;
  Alcotest.(check bool) "distinct from no-node sentinel" true
    (Check.phantom_uid <> -1);
  let phantom_retire =
    [| ev 0 Trace.Retire ~dom:0 ~uid:Check.phantom_uid () |]
  in
  expect_violation "phantom retire" "phantom" ~uid:Check.phantom_uid
    phantom_retire (fun _ -> ());
  (* a Step *into* the phantom is just as much of a leak *)
  (match
     Check.run [| ev 0 Trace.Step ~dom:0 ~uid:1 ~a:Check.phantom_uid () |]
   with
  | Ok _ -> Alcotest.fail "step onto the phantom passed"
  | Error (v :: _) -> Alcotest.(check string) "rule" "phantom" v.Check.v_rule
  | Error [] -> assert false);
  (* while a Step with the ordinary -1 no-node sentinel stays clean *)
  match Check.run [| ev 0 Trace.Step ~dom:0 ~uid:(-1) ~a:1 () |] with
  | Ok _ -> ()
  | Error (v :: _) ->
      Alcotest.failf "no-node sentinel step rejected: %s" v.Check.v_detail
  | Error [] -> assert false

let test_horizon_suppresses_incomplete () =
  (* same protect-window shape, but everything before the Free is below the
     horizon: state still replays (no lifecycle noise), nothing flags *)
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Protect ~dom:1 ~uid:1 ();
      ev 2 Trace.Retire ~dom:0 ~uid:1 ();
      ev 3 Trace.Free ~dom:0 ~uid:1 ();
    |]
  in
  match Check.run ~complete_from:4 events with
  | Ok s -> Alcotest.(check int) "state-only events" 4 s.Check.below_horizon
  | Error (v :: _) ->
      Alcotest.failf "below-horizon event flagged: %s" v.Check.v_detail
  | Error [] -> assert false

(* --- real traces from the actual schemes --------------------------------- *)

module Churn
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
    end) =
struct
  let run () =
    let scheme = S.create () in
    let t = L.create scheme in
    ignore
      (Pool.run_timed ~n:2 ~duration:0.12 (fun i ~stop ->
           let h = S.register scheme in
           let lo = L.make_local h in
           let rng = Rng.create ~seed:(31 + i) in
           while not (stop ()) do
             let key = Rng.below rng 48 in
             match Rng.below rng 4 with
             | 0 | 1 -> ignore (L.get t lo key)
             | 2 -> ignore (L.insert t lo key key)
             | _ -> ignore (L.remove t lo key)
           done;
           L.clear_local lo;
           S.unregister h))
end

let check_clean name run =
  Trace.enable ~capacity:(1 lsl 16) ();
  run ();
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  match Check.run_snapshot snap with
  | Ok s ->
      Alcotest.(check bool) (name ^ ": trace non-empty") true (s.Check.events > 0);
      s
  | Error (v :: rest) ->
      Alcotest.failf "%s: %s (+%d more)" name
        (Format.asprintf "%a" Check.pp_violation v)
        (List.length rest)
  | Error [] -> assert false

let test_real_trace_hp () =
  let module M = Churn (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  let s = check_clean "hmlist/HP" M.run in
  Alcotest.(check bool) "saw protections" true (s.Check.protects > 0)

let test_real_trace_hpp () =
  let module M = Churn (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  let s = check_clean "hhslist/HP++" M.run in
  Alcotest.(check bool) "saw unlink batches" true (s.Check.unlink_batches > 0)

let test_real_trace_ebr () =
  let module M = Churn (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  ignore (check_clean "hhslist/EBR" M.run)

let test_real_trace_pebr () =
  let module M = Churn (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  let s = check_clean "hhslist/PEBR" M.run in
  Alcotest.(check bool) "saw steps" true (s.Check.steps > 0)

let test_real_trace_shardkv () =
  let module KV = Service.Shardkv.Make (Hp_plus) in
  let s =
    check_clean "shardkv/HP++" (fun () ->
        let kv = KV.create ~shards:2 () in
        for k = 0 to 400 do
          ignore (KV.put kv k k);
          ignore (KV.get kv k);
          if k mod 3 = 0 then ignore (KV.delete kv k)
        done;
        KV.detach kv)
  in
  Alcotest.(check bool) "saw op spans" true (s.Check.spans > 0)

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "ring wraparound keeps newest" `Quick
            test_wraparound;
          Alcotest.test_case "multi-domain merge totally ordered" `Quick
            test_multi_domain_merge;
          Alcotest.test_case "disabled: no events, no allocation" `Quick
            test_disabled_records_nothing_allocates_nothing;
          Alcotest.test_case "raw artifact round-trip" `Quick
            test_raw_roundtrip;
        ] );
      ( "checker",
        [
          Alcotest.test_case "rejects free before batch invalidation" `Quick
            test_reject_free_before_invalidate;
          Alcotest.test_case "rejects free inside protection window" `Quick
            test_reject_free_in_protect_window;
          Alcotest.test_case "clean trace passes" `Quick test_clean_trace_passes;
          Alcotest.test_case "step tag bits pinned to Tagged" `Quick
            test_step_tag_bits_pin_tagged;
          Alcotest.test_case "phantom uid rejected, pinned to Mem" `Quick
            test_phantom_uid_rejected;
          Alcotest.test_case "wraparound horizon suppresses incomplete" `Quick
            test_horizon_suppresses_incomplete;
        ] );
      ( "real-traces",
        [
          Alcotest.test_case "hmlist/HP clean" `Quick test_real_trace_hp;
          Alcotest.test_case "hhslist/HP++ clean" `Quick test_real_trace_hpp;
          Alcotest.test_case "hhslist/EBR clean" `Quick test_real_trace_ebr;
          Alcotest.test_case "hhslist/PEBR clean" `Quick test_real_trace_pebr;
          Alcotest.test_case "shardkv spans clean" `Quick
            test_real_trace_shardkv;
        ] );
    ]
