(* Tests for the lib/obs tracer, exporters and trace-replay checker:
   ring-buffer semantics, the zero-cost disabled path, hand-built traces
   that must be rejected with precise diagnostics, and real traces from
   short runs of all four schemes that must pass clean. *)

module Trace = Obs.Trace
module Check = Obs.Check
module Tagged = Smr_core.Tagged
module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng

let cleanup () =
  Trace.disable ();
  Trace.reset ()

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- tracer -------------------------------------------------------------- *)

let test_wraparound () =
  Trace.enable ~capacity:16 ();
  for i = 0 to 49 do
    Trace.emit Trace.Alloc i 0 0
  done;
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  Alcotest.(check int) "kept" 16 (Array.length snap.Trace.events);
  Alcotest.(check int) "dropped" 34 snap.Trace.dropped;
  (* the newest events survive, in order *)
  Array.iteri
    (fun j (e : Trace.event) ->
      Alcotest.(check int) "uid" (34 + j) e.Trace.uid)
    snap.Trace.events;
  Alcotest.(check int) "horizon = oldest kept seq" 34 snap.Trace.complete_from

let test_multi_domain_merge () =
  let per_domain = 1000 and domains = 4 in
  Trace.enable ~capacity:4096 ();
  let ds =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Trace.emit Trace.Retire ((d * per_domain) + i) d 0
            done))
  in
  Array.iter Domain.join ds;
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  Alcotest.(check int) "all events kept" (domains * per_domain)
    (Array.length snap.Trace.events);
  Alcotest.(check int) "nothing dropped" 0 snap.Trace.dropped;
  (* seq is a total order: strictly increasing and gap-free after merge *)
  Array.iteri
    (fun j (e : Trace.event) -> Alcotest.(check int) "seq" j e.Trace.seq)
    snap.Trace.events

let test_disabled_records_nothing_allocates_nothing () =
  cleanup ();
  for i = 0 to 99 do
    Trace.emit Trace.Retire i 0 0
  done;
  Alcotest.(check int) "nothing recorded" 0
    (Array.length (Trace.snapshot ()).Trace.events);
  let w0 = Gc.minor_words () in
  for i = 0 to 99_999 do
    Trace.emit Trace.Retire i 0 0
  done;
  let w1 = Gc.minor_words () in
  (* budget far below one word per emit: a boxing bug would cost >= 100k *)
  Alcotest.(check bool) "no allocation on disabled emit" true (w1 -. w0 < 256.)

let test_raw_roundtrip () =
  Trace.enable ~capacity:16 ();
  for i = 0 to 49 do
    Trace.emit Trace.Step i (i + 1) 2
  done;
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  let path = Filename.temp_file "obs_trace" ".raw" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.write_raw oc snap;
      close_out oc;
      let ic = open_in path in
      let back = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Trace.read_raw ic) in
      Alcotest.(check int) "dropped" snap.Trace.dropped back.Trace.dropped;
      Alcotest.(check int) "horizon" snap.Trace.complete_from
        back.Trace.complete_from;
      Alcotest.(check bool) "events round-trip" true
        (snap.Trace.events = back.Trace.events))

(* --- checker on hand-built traces ---------------------------------------- *)

let ev seq kind ~dom ~uid ?(a = 0) ?(b = 0) () : Trace.event =
  { Trace.seq; ts = seq; dom; kind; uid; a; b }

let expect_violation name rule ~uid events k =
  match Check.run events with
  | Ok _ -> Alcotest.failf "%s: expected a %s violation, trace passed" name rule
  | Error (v :: _ as vs) ->
      Alcotest.(check string) (name ^ " rule") rule v.Check.v_rule;
      Alcotest.(check int) (name ^ " uid") uid v.Check.v_uid;
      k vs
  | Error [] -> assert false

let test_reject_free_before_invalidate () =
  (* uids 1 and 2 unlinked as one batch; only 1 is invalidated before 1 is
     freed, so the whole-batch rule must name the missing member (2). *)
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Alloc ~dom:0 ~uid:2 ();
      ev 2 Trace.Unlink ~dom:0 ~uid:1 ~a:7 ();
      ev 3 Trace.Unlink ~dom:0 ~uid:2 ~a:7 ();
      ev 4 Trace.Invalidate ~dom:0 ~uid:1 ~a:7 ();
      ev 5 Trace.Free ~dom:0 ~uid:1 ();
    |]
  in
  expect_violation "free-before-invalidate" "invalidate-before-free" ~uid:1
    events (fun (v :: _) ->
      Alcotest.(check bool) "diagnostic names the missing member" true
        (contains v.Check.v_detail "missing: 2");
      Alcotest.(check int) "at the Free" 5 v.Check.v_seq)
  [@warning "-8"]

let test_reject_free_in_protect_window () =
  (* dom 1 holds a validated protection on uid 1 when dom 0 frees it *)
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Protect ~dom:1 ~uid:1 ();
      ev 2 Trace.Retire ~dom:0 ~uid:1 ();
      ev 3 Trace.Free ~dom:0 ~uid:1 ();
      ev 4 Trace.Unprotect ~dom:1 ~uid:1 ();
    |]
  in
  expect_violation "protect-window" "protect-window" ~uid:1 events
    (fun (v :: _) ->
      Alcotest.(check bool) "diagnostic names the protecting domain" true
        (contains v.Check.v_detail "dom 1");
      Alcotest.(check int) "at the Free" 3 v.Check.v_seq)
  [@warning "-8"]

let test_clean_trace_passes () =
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Protect ~dom:1 ~uid:1 ();
      ev 2 Trace.Retire ~dom:0 ~uid:1 ();
      ev 3 Trace.Unprotect ~dom:1 ~uid:1 ();
      ev 4 Trace.Free ~dom:0 ~uid:1 ();
    |]
  in
  match Check.run events with
  | Ok s ->
      Alcotest.(check int) "allocs" 1 s.Check.allocs;
      Alcotest.(check int) "frees" 1 s.Check.frees;
      Alcotest.(check int) "protects" 1 s.Check.protects
  | Error (v :: _) ->
      Alcotest.failf "clean trace rejected: %s" v.Check.v_detail
  | Error [] -> assert false

let test_step_tag_bits_pin_tagged () =
  (* the checker's notion of the invalid bit must be Tagged's *)
  let step b = [| ev 0 Trace.Step ~dom:0 ~uid:1 ~a:2 ~b () |] in
  (match Check.run (step Tagged.invalid_bit) with
  | Ok _ -> Alcotest.fail "step over the invalid bit passed"
  | Error (v :: _) ->
      Alcotest.(check string) "rule" "step-from-invalidated" v.Check.v_rule
  | Error [] -> assert false);
  match Check.run (step Tagged.deleted_bit) with
  | Ok _ -> () (* deletion tags are fine to traverse *)
  | Error (v :: _) -> Alcotest.failf "deleted-tag step rejected: %s" v.Check.v_detail
  | Error [] -> assert false

let test_phantom_uid_rejected () =
  (* the checker's phantom uid must be Mem's (and not the -1 no-node Step
     sentinel); any event carrying it must flag, even below no horizon *)
  Alcotest.(check int) "pinned to Mem.phantom_uid" Smr_core.Mem.phantom_uid
    Check.phantom_uid;
  Alcotest.(check bool) "distinct from no-node sentinel" true
    (Check.phantom_uid <> -1);
  let phantom_retire =
    [| ev 0 Trace.Retire ~dom:0 ~uid:Check.phantom_uid () |]
  in
  expect_violation "phantom retire" "phantom" ~uid:Check.phantom_uid
    phantom_retire (fun _ -> ());
  (* a Step *into* the phantom is just as much of a leak *)
  (match
     Check.run [| ev 0 Trace.Step ~dom:0 ~uid:1 ~a:Check.phantom_uid () |]
   with
  | Ok _ -> Alcotest.fail "step onto the phantom passed"
  | Error (v :: _) -> Alcotest.(check string) "rule" "phantom" v.Check.v_rule
  | Error [] -> assert false);
  (* while a Step with the ordinary -1 no-node sentinel stays clean *)
  match Check.run [| ev 0 Trace.Step ~dom:0 ~uid:(-1) ~a:1 () |] with
  | Ok _ -> ()
  | Error (v :: _) ->
      Alcotest.failf "no-node sentinel step rejected: %s" v.Check.v_detail
  | Error [] -> assert false

let test_horizon_suppresses_incomplete () =
  (* same protect-window shape, but everything before the Free is below the
     horizon: state still replays (no lifecycle noise), nothing flags *)
  let events =
    [|
      ev 0 Trace.Alloc ~dom:0 ~uid:1 ();
      ev 1 Trace.Protect ~dom:1 ~uid:1 ();
      ev 2 Trace.Retire ~dom:0 ~uid:1 ();
      ev 3 Trace.Free ~dom:0 ~uid:1 ();
    |]
  in
  match Check.run ~complete_from:4 events with
  | Ok s -> Alcotest.(check int) "state-only events" 4 s.Check.below_horizon
  | Error (v :: _) ->
      Alcotest.failf "below-horizon event flagged: %s" v.Check.v_detail
  | Error [] -> assert false

(* --- real traces from the actual schemes --------------------------------- *)

module Churn
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
    end) =
struct
  let run () =
    let scheme = S.create () in
    let t = L.create scheme in
    ignore
      (Pool.run_timed ~n:2 ~duration:0.12 (fun i ~stop ->
           let h = S.register scheme in
           let lo = L.make_local h in
           let rng = Rng.create ~seed:(31 + i) in
           while not (stop ()) do
             let key = Rng.below rng 48 in
             match Rng.below rng 4 with
             | 0 | 1 -> ignore (L.get t lo key)
             | 2 -> ignore (L.insert t lo key key)
             | _ -> ignore (L.remove t lo key)
           done;
           L.clear_local lo;
           S.unregister h))
end

let check_clean name run =
  Trace.enable ~capacity:(1 lsl 16) ();
  run ();
  Trace.disable ();
  let snap = Trace.snapshot () in
  cleanup ();
  match Check.run_snapshot snap with
  | Ok s ->
      Alcotest.(check bool) (name ^ ": trace non-empty") true (s.Check.events > 0);
      s
  | Error (v :: rest) ->
      Alcotest.failf "%s: %s (+%d more)" name
        (Format.asprintf "%a" Check.pp_violation v)
        (List.length rest)
  | Error [] -> assert false

let test_real_trace_hp () =
  let module M = Churn (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  let s = check_clean "hmlist/HP" M.run in
  Alcotest.(check bool) "saw protections" true (s.Check.protects > 0)

let test_real_trace_hpp () =
  let module M = Churn (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  let s = check_clean "hhslist/HP++" M.run in
  Alcotest.(check bool) "saw unlink batches" true (s.Check.unlink_batches > 0)

let test_real_trace_ebr () =
  let module M = Churn (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  ignore (check_clean "hhslist/EBR" M.run)

let test_real_trace_pebr () =
  let module M = Churn (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  let s = check_clean "hhslist/PEBR" M.run in
  Alcotest.(check bool) "saw steps" true (s.Check.steps > 0)

let test_real_trace_shardkv () =
  let module KV = Service.Shardkv.Make (Hp_plus) in
  let s =
    check_clean "shardkv/HP++" (fun () ->
        let kv = KV.create ~shards:2 () in
        for k = 0 to 400 do
          ignore (KV.put kv k k);
          ignore (KV.get kv k);
          if k mod 3 = 0 then ignore (KV.delete kv k)
        done;
        KV.detach kv)
  in
  Alcotest.(check bool) "saw op spans" true (s.Check.spans > 0)

(* --- metrics: histogram family, label validation, escaping --------------- *)

let test_metrics_histogram () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.histogram m ~help:"Latency" "lat"
    ~buckets:[ (0.001, 2); (0.01, 5) ]
    ~count:7 ~sum:0.025;
  let s = Obs.Metrics.to_string m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains s needle))
    [
      "# TYPE lat histogram";
      "# HELP lat Latency";
      "lat_bucket{le=\"0.001\"} 2";
      "lat_bucket{le=\"0.01\"} 5";
      "lat_bucket{le=\"+Inf\"} 7";
      "lat_count 7";
      "lat_sum 0.025";
    ];
  (* the bucket/count/sum sub-series ride under the one histogram TYPE
     header — no per-series TYPE lines of their own *)
  Alcotest.(check bool) "no TYPE for _bucket" false (contains s "TYPE lat_bucket");
  Alcotest.(check bool) "no TYPE for _count" false (contains s "TYPE lat_count");
  Alcotest.(check bool) "no TYPE for _sum" false (contains s "TYPE lat_sum")

let test_metrics_label_key_rejected () =
  let m = Obs.Metrics.create () in
  let rejects k =
    match Obs.Metrics.counter m ~labels:[ (k, "v") ] "ok_name" 1.0 with
    | () -> Alcotest.failf "label key %S accepted" k
    | exception Invalid_argument _ -> ()
  in
  List.iter rejects [ ""; "0abc"; "le:quantile"; "a-b"; "sp ace" ];
  (* valid keys still pass *)
  Obs.Metrics.counter m ~labels:[ ("_ok", "v"); ("aB9_", "w") ] "ok_name" 1.0

let test_metrics_label_value_escaped () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.gauge m ~labels:[ ("path", "a\"b\\c\nd") ] "g" 1.0;
  let s = Obs.Metrics.to_string m in
  Alcotest.(check bool) "escaped value pinned" true
    (contains s "path=\"a\\\"b\\\\c\\nd\"")

(* --- exposition: request handling and the live listener ------------------- *)

let test_exposition_handle_request () =
  let refresh () = "body 42\n" in
  let starts needle s =
    Alcotest.(check bool)
      ("starts with " ^ needle)
      true
      (String.length s >= String.length needle
      && String.sub s 0 (String.length needle) = needle)
  in
  let r = Obs.Exposition.handle_request ~refresh "GET /metrics HTTP/1.0" in
  starts "HTTP/1.0 200" r;
  Alcotest.(check bool) "body served" true (contains r "body 42");
  Alcotest.(check bool) "content-type" true
    (contains r "text/plain; version=0.0.4");
  starts "HTTP/1.0 200"
    (Obs.Exposition.handle_request ~refresh "GET /metrics?x=1 HTTP/1.1");
  starts "HTTP/1.0 404"
    (Obs.Exposition.handle_request ~refresh "GET /other HTTP/1.0");
  starts "HTTP/1.0 405"
    (Obs.Exposition.handle_request ~refresh "POST /metrics HTTP/1.0");
  starts "HTTP/1.0 400" (Obs.Exposition.handle_request ~refresh "garbage")

let scrape port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = "GET /metrics HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            ()
      in
      go ();
      Buffer.contents buf)

let test_exposition_live_scrape () =
  let calls = Atomic.make 0 in
  let sample m =
    Obs.Metrics.counter m "samples_total"
      (float_of_int (Atomic.fetch_and_add calls 1 + 1))
  in
  (* every:0 → every scrape resamples; chunk:7 → the 200 goes out in
     7-byte writes, covering the partial-write path on every response *)
  let e =
    Obs.Exposition.start ~every:0.0 ~chunk:7 ~sample
      (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  Fun.protect
    ~finally:(fun () -> Obs.Exposition.stop e)
    (fun () ->
      let port = Obs.Exposition.port e in
      let r1 = scrape port in
      Alcotest.(check bool) "scrape 1 ok" true (contains r1 "HTTP/1.0 200");
      Alcotest.(check bool) "scrape 1 sampled" true
        (contains r1 "samples_total 1");
      let r2 = scrape port in
      Alcotest.(check bool) "scrape 2 resampled" true
        (contains r2 "samples_total 2");
      Alcotest.(check bool) "404 leaves listener alive" true
        (contains (scrape port) "samples_total");
      Alcotest.(check int) "scrapes counted" 3 (Obs.Exposition.scrapes e));
  (* stop is idempotent *)
  Obs.Exposition.stop e

let test_exposition_survives_write_kill () =
  let sample m = Obs.Metrics.counter m "c_total" 1.0 in
  let e =
    Obs.Exposition.start ~every:0.0 ~chunk:8 ~sample
      (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Obs.Exposition.stop e)
    (fun () ->
      let port = Obs.Exposition.port e in
      (* kill the response write on its second chunk: that connection dies
         mid-response, the listener must survive *)
      Fault.arm ~point:Fault.Net_write ~action:Fault.Kill ~after:2 ();
      let truncated = scrape port in
      Alcotest.(check bool) "response cut short" true
        (String.length truncated < 100);
      Fault.reset ();
      let r = scrape port in
      Alcotest.(check bool) "endpoint survives a killed write" true
        (contains r "c_total 1"))

(* --- merge: clock correlation and span synthesis -------------------------- *)

let evt ~seq ~ts ~dom ?(a = 0) ?(b = 0) kind uid : Trace.event =
  { Trace.seq; ts; dom; kind; uid; a; b }

let mk_snap events =
  { Trace.events; dropped = 0; complete_from = 0 }

(* Three request/reply exchanges with symmetric network delay and a true
   server-minus-client offset of [d] ns: the NTP-style estimate recovers
   [d] exactly, with zero spread. *)
let correlated_pair d =
  let frame i =
    let f = i + 1 in
    let base = 10_000 * f in
    let cs = base and cd = base + 4000 in
    let sr = base + 1000 + d and sw = base + 3000 + d in
    ( [
        evt ~seq:(2 * i) ~ts:cs ~dom:0 Trace.Req_send f;
        evt ~seq:((2 * i) + 1) ~ts:cd ~dom:0 ~a:0x81 Trace.Req_done f;
      ],
      [
        evt ~seq:(4 * i) ~ts:sr ~dom:0 ~a:1 ~b:0 Trace.Req_recv f;
        evt ~seq:((4 * i) + 1) ~ts:(sr + 500) ~dom:0 Trace.Req_dispatch f;
        evt ~seq:((4 * i) + 2) ~ts:(sw - 500) ~dom:0 ~a:0x81 ~b:1500
          Trace.Req_reply f;
        evt ~seq:((4 * i) + 3) ~ts:sw ~dom:1 Trace.Req_wire f;
      ] )
  in
  let pairs = List.map frame [ 0; 1; 2 ] in
  ( mk_snap (Array.of_list (List.concat_map fst pairs)),
    mk_snap (Array.of_list (List.concat_map snd pairs)) )

let test_merge_offset () =
  let client, server = correlated_pair 700_000 in
  match Obs.Merge.estimate_offset ~client ~server with
  | None -> Alcotest.fail "no correlation found"
  | Some c ->
      Alcotest.(check int) "offset" 700_000 c.Obs.Merge.offset_ns;
      Alcotest.(check int) "pairs" 3 c.Obs.Merge.pairs;
      Alcotest.(check int) "spread" 0 c.Obs.Merge.spread_ns

let test_merge_rebases_and_spans () =
  let d = 700_000 in
  let client, server = correlated_pair d in
  let corr, merged = Obs.Merge.merge ~client ~server in
  Alcotest.(check int) "offset used" d corr.Obs.Merge.offset_ns;
  (* seqs are a gap-free total order; client events land after the server's
     and on domain ids above every server domain *)
  Array.iteri
    (fun j (e : Trace.event) -> Alcotest.(check int) "seq" j e.Trace.seq)
    merged.Trace.events;
  let server_n = Array.length server.Trace.events in
  Array.iteri
    (fun j (e : Trace.event) ->
      if j >= server_n then Alcotest.(check int) "client dom shifted" 2 e.Trace.dom)
    merged.Trace.events;
  (* a client Req_send now sits on the server clock: ts + d *)
  let send1 =
    Array.to_list merged.Trace.events
    |> List.find (fun (e : Trace.event) -> e.Trace.kind = Trace.Req_send)
  in
  Alcotest.(check int) "client ts rebased" (10_000 + d) send1.Trace.ts;
  let with_spans = Obs.Merge.synthesize_spans merged in
  let spans =
    Array.to_list with_spans.Trace.events
    |> List.filter (fun (e : Trace.event) -> e.Trace.kind = Trace.Span)
  in
  Alcotest.(check int) "4 spans per frame" 12 (List.length spans);
  let count op =
    List.length (List.filter (fun (e : Trace.event) -> e.Trace.a = op) spans)
  in
  Alcotest.(check int) "rpc spans" 3 (count Obs.Merge.op_rpc);
  Alcotest.(check int) "queue spans" 3 (count Obs.Merge.op_queue);
  Alcotest.(check int) "serve spans" 3 (count Obs.Merge.op_serve);
  Alcotest.(check int) "write spans" 3 (count Obs.Merge.op_write);
  (* frame 1's rpc span: starts at the rebased send, lasts cd - cs *)
  let rpc1 =
    List.find
      (fun (e : Trace.event) -> e.Trace.a = Obs.Merge.op_rpc && e.Trace.uid = 1)
      spans
  in
  Alcotest.(check int) "rpc start" (10_000 + d) rpc1.Trace.ts;
  Alcotest.(check int) "rpc duration" 4000 rpc1.Trace.b;
  (* and the checker still accepts the merged, span-bearing snapshot *)
  match Check.run with_spans.Trace.events with
  | Ok _ -> ()
  | Error (v :: _) ->
      Alcotest.failf "merged trace rejected: %s" v.Check.v_detail
  | Error [] -> assert false

let test_merge_no_correlation () =
  let client =
    mk_snap [| evt ~seq:0 ~ts:0 ~dom:0 Trace.Req_send 1 |]
  in
  let server = mk_snap [| evt ~seq:0 ~ts:0 ~dom:0 Trace.Alloc 9 |] in
  (match Obs.Merge.estimate_offset ~client ~server with
  | None -> ()
  | Some _ -> Alcotest.fail "correlation from unrelated traces");
  let corr, merged = Obs.Merge.merge ~client ~server in
  Alcotest.(check int) "pairs" 0 corr.Obs.Merge.pairs;
  Alcotest.(check int) "offset falls back to 0" 0 corr.Obs.Merge.offset_ns;
  Alcotest.(check int) "both events kept" 2 (Array.length merged.Trace.events)

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "ring wraparound keeps newest" `Quick
            test_wraparound;
          Alcotest.test_case "multi-domain merge totally ordered" `Quick
            test_multi_domain_merge;
          Alcotest.test_case "disabled: no events, no allocation" `Quick
            test_disabled_records_nothing_allocates_nothing;
          Alcotest.test_case "raw artifact round-trip" `Quick
            test_raw_roundtrip;
        ] );
      ( "checker",
        [
          Alcotest.test_case "rejects free before batch invalidation" `Quick
            test_reject_free_before_invalidate;
          Alcotest.test_case "rejects free inside protection window" `Quick
            test_reject_free_in_protect_window;
          Alcotest.test_case "clean trace passes" `Quick test_clean_trace_passes;
          Alcotest.test_case "step tag bits pinned to Tagged" `Quick
            test_step_tag_bits_pin_tagged;
          Alcotest.test_case "phantom uid rejected, pinned to Mem" `Quick
            test_phantom_uid_rejected;
          Alcotest.test_case "wraparound horizon suppresses incomplete" `Quick
            test_horizon_suppresses_incomplete;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram family rendering" `Quick
            test_metrics_histogram;
          Alcotest.test_case "invalid label keys rejected" `Quick
            test_metrics_label_key_rejected;
          Alcotest.test_case "label values escaped" `Quick
            test_metrics_label_value_escaped;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "request parsing: 200/404/405/400" `Quick
            test_exposition_handle_request;
          Alcotest.test_case "live scrape with partial writes" `Quick
            test_exposition_live_scrape;
          Alcotest.test_case "killed write leaves endpoint alive" `Quick
            test_exposition_survives_write_kill;
        ] );
      ( "merge",
        [
          Alcotest.test_case "NTP-style offset recovered exactly" `Quick
            test_merge_offset;
          Alcotest.test_case "merge rebases client, synthesizes spans" `Quick
            test_merge_rebases_and_spans;
          Alcotest.test_case "unrelated traces: no pairs, offset 0" `Quick
            test_merge_no_correlation;
        ] );
      ( "real-traces",
        [
          Alcotest.test_case "hmlist/HP clean" `Quick test_real_trace_hp;
          Alcotest.test_case "hhslist/HP++ clean" `Quick test_real_trace_hpp;
          Alcotest.test_case "hhslist/EBR clean" `Quick test_real_trace_ebr;
          Alcotest.test_case "hhslist/PEBR clean" `Quick test_real_trace_pebr;
          Alcotest.test_case "shardkv spans clean" `Quick
            test_real_trace_shardkv;
        ] );
    ]
