(* Contract and scenario tests for the reclamation schemes. *)

module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link

let cfg = Smr.Smr_intf.default_config

(* Generic contract every scheme must honour. [expect_free] is false for NR,
   which leaks by design. *)
module Contract (S : Smr.Smr_intf.S) = struct
  let expect_free = S.name <> "NR"

  let test_retire_then_flush () =
    let t = S.create () in
    let h = S.register t in
    let hdr = Mem.make (S.stats t) in
    S.retire h hdr;
    Alcotest.(check bool) "retired" true (Mem.is_retired hdr);
    S.flush h;
    Alcotest.(check bool) "freed after flush" expect_free (Mem.is_freed hdr);
    if expect_free then
      Alcotest.(check int) "unreclaimed drained" 0
        (Stats.unreclaimed (S.stats t));
    S.unregister h

  let test_try_unlink_success_and_failure () =
    let t = S.create () in
    let h = S.register t in
    let hdr = Mem.make (S.stats t) in
    let node = (hdr, Link.null ()) in
    let invalidated = ref false in
    let ok =
      S.try_unlink h ~frontier:[]
        ~do_unlink:(fun () -> Some [ node ])
        ~node_header:fst
        ~invalidate:(fun _ -> invalidated := true)
    in
    Alcotest.(check bool) "unlink reported" true ok;
    Alcotest.(check bool) "retired by unlink" true (Mem.is_retired hdr);
    let failed =
      S.try_unlink h ~frontier:[]
        ~do_unlink:(fun () -> None)
        ~node_header:fst
        ~invalidate:(fun _ -> ())
    in
    Alcotest.(check bool) "failed unlink reported" false failed;
    S.flush h;
    Alcotest.(check bool) "freed eventually" expect_free (Mem.is_freed hdr);
    S.unregister h

  let test_crit_and_guards_smoke () =
    let t = S.create () in
    let h = S.register t in
    S.crit_enter h;
    let g = S.guard h in
    let hdr = Mem.make (S.stats t) in
    S.protect g hdr;
    Alcotest.(check bool) "fresh handle valid" true (S.protection_valid h);
    S.release g;
    S.crit_refresh h;
    S.crit_exit h;
    S.unregister h

  let test_many_retires_bounded_or_drained () =
    let t = S.create () in
    let h = S.register t in
    for _ = 1 to 1000 do
      S.retire h (Mem.make (S.stats t))
    done;
    S.flush h;
    let remaining = Stats.unreclaimed (S.stats t) in
    if expect_free then Alcotest.(check int) "all drained" 0 remaining
    else Alcotest.(check int) "NR leaks all" 1000 remaining;
    S.unregister h

  let test_unregister_hands_over () =
    let t = S.create () in
    let h1 = S.register t in
    let hdr = Mem.make (S.stats t) in
    S.retire h1 hdr;
    S.unregister h1;
    (* another participant must be able to finish the job *)
    let h2 = S.register t in
    S.flush h2;
    S.flush h2;
    Alcotest.(check bool) "adopted and freed" expect_free (Mem.is_freed hdr);
    S.unregister h2

  let tests =
    [
      Alcotest.test_case "retire then flush" `Quick test_retire_then_flush;
      Alcotest.test_case "try_unlink" `Quick test_try_unlink_success_and_failure;
      Alcotest.test_case "crit/guards smoke" `Quick test_crit_and_guards_smoke;
      Alcotest.test_case "bulk retires" `Quick test_many_retires_bounded_or_drained;
      Alcotest.test_case "unregister handover" `Quick test_unregister_hands_over;
    ]
end

module Contract_hp = Contract (Hp)
module Contract_hpp = Contract (Hp_plus)
module Contract_ebr = Contract (Ebr)
module Contract_pebr = Contract (Pebr)
module Contract_rc = Contract (Rc)
module Contract_nr = Contract (Nr)

(* --- HP specifics ------------------------------------------------------- *)

let test_hp_protection_blocks_free () =
  let t = Hp.create ~config:{ cfg with reclaim_threshold = 1 } () in
  let protector = Hp.register t in
  let reclaimer = Hp.register t in
  let hdr = Mem.make (Hp.stats t) in
  let g = Hp.guard protector in
  Hp.protect g hdr;
  Hp.retire reclaimer hdr;
  Hp.flush reclaimer;
  Alcotest.(check bool) "protected survives" false (Mem.is_freed hdr);
  Hp.release g;
  Hp.flush reclaimer;
  Alcotest.(check bool) "freed after release" true (Mem.is_freed hdr);
  Hp.unregister protector;
  Hp.unregister reclaimer

let test_hp_not_optimistic () =
  Alcotest.(check bool) "flag" false Hp.supports_optimistic;
  Alcotest.(check bool) "robust" true Hp.robust

(* --- HP++ specifics ----------------------------------------------------- *)

let make_node stats =
  (* A minimal "node": header plus a next link whose invalid bit stands in
     for the data structure's invalidation flag. *)
  let hdr = Mem.make stats in
  (hdr, Link.make (Tagged.make ~tag:0 (Some ())))

let node_header (hdr, _) = hdr
let node_link (_, link) = link
let invalidate = List.iter (fun n -> Link.mark_invalid (node_link n))
let is_invalid n = Tagged.is_invalid (Link.get (node_link n))

let hpp_plain () =
  Hp_plus.create
    ~config:
      { cfg with epoched_fence = false; invalidate_threshold = 1000;
        reclaim_threshold = 1000 }
    ()

let test_hpp_invalidation_precedes_retirement () =
  let t = hpp_plain () in
  let h = Hp_plus.register t in
  let n = make_node (Hp_plus.stats t) in
  let ok =
    Hp_plus.try_unlink h ~frontier:[]
      ~do_unlink:(fun () -> Some [ n ])
      ~node_header ~invalidate
  in
  Alcotest.(check bool) "unlinked" true ok;
  Alcotest.(check bool) "not yet invalidated (deferred)" false (is_invalid n);
  Alcotest.(check int) "pending unlinked" 1 (Hp_plus.pending_unlinked h);
  (* A reclaim pass before invalidation must not free the node: it is not
     in the retired set yet. *)
  Hp_plus.reclaim h;
  Alcotest.(check bool) "unreclaimable before invalidation" false
    (Mem.is_freed (node_header n));
  Hp_plus.do_invalidation h;
  Alcotest.(check bool) "invalidated" true (is_invalid n);
  Alcotest.(check int) "moved to retireds" 1 (Hp_plus.pending_retired h);
  Hp_plus.reclaim h;
  Alcotest.(check bool) "freed after invalidation" true
    (Mem.is_freed (node_header n));
  Hp_plus.unregister h

(* §3.1 guarantee (2): the frontier is protected from before the unlink
   until after invalidation, so a concurrent deleter of the frontier node
   cannot free it meanwhile. *)
let test_hpp_frontier_protection () =
  let t = hpp_plain () in
  let unlinker = Hp_plus.register t in
  let deleter = Hp_plus.register t in
  let stats = Hp_plus.stats t in
  let chain = make_node stats in
  let frontier = make_node stats in
  let ok =
    Hp_plus.try_unlink unlinker
      ~frontier:[ node_header frontier ]
      ~do_unlink:(fun () -> Some [ chain ])
      ~node_header ~invalidate
  in
  Alcotest.(check bool) "unlinked" true ok;
  (* Another thread now unlinks and tries to reclaim the frontier node. *)
  Hp_plus.retire deleter (node_header frontier);
  Hp_plus.reclaim deleter;
  Alcotest.(check bool) "frontier survives while patch-up pending" false
    (Mem.is_freed (node_header frontier));
  (* After the unlinker's invalidation batch the protection is revoked. *)
  Hp_plus.do_invalidation unlinker;
  Hp_plus.reclaim deleter;
  Alcotest.(check bool) "frontier reclaimable afterwards" true
    (Mem.is_freed (node_header frontier));
  Hp_plus.unregister unlinker;
  Hp_plus.unregister deleter

(* §3.1 guarantee (1): all unlinked nodes are invalidated before any is
   freed — a traverser that protected q and then saw p uninvalidated can
   rely on q not having been freed. Scheme-level rendition: protect q after
   the unlink; q must survive reclamation. *)
let test_hpp_protect_after_unlink_survives () =
  let t = hpp_plain () in
  let unlinker = Hp_plus.register t in
  let traverser = Hp_plus.register t in
  let stats = Hp_plus.stats t in
  let p = make_node stats and q = make_node stats in
  ignore
    (Hp_plus.try_unlink unlinker ~frontier:[]
       ~do_unlink:(fun () -> Some [ p; q ])
       ~node_header ~invalidate);
  (* Traverser validates: p not invalidated yet => may protect q. *)
  Alcotest.(check bool) "p not invalidated yet" false (is_invalid p);
  let g = Hp_plus.guard traverser in
  Hp_plus.protect g (node_header q);
  (* Unlinker completes its cycle; q is protected and must survive. *)
  Hp_plus.do_invalidation unlinker;
  Hp_plus.reclaim unlinker;
  Alcotest.(check bool) "q survives" false (Mem.is_freed (node_header q));
  Alcotest.(check bool) "p freed" true (Mem.is_freed (node_header p));
  Hp_plus.release g;
  Hp_plus.reclaim unlinker;
  Alcotest.(check bool) "q freed after release" true
    (Mem.is_freed (node_header q));
  Hp_plus.unregister unlinker;
  Hp_plus.unregister traverser

let test_hpp_epoched_fence_piggyback () =
  let t =
    Hp_plus.create
      ~config:
        { cfg with epoched_fence = true; invalidate_threshold = 1;
          reclaim_threshold = 1000 }
      ()
  in
  let h = Hp_plus.register t in
  let stats = Hp_plus.stats t in
  let e0 = Hp_plus.fence_epoch t in
  (* Each unlink triggers DoInvalidation (threshold 1), which only reads the
     epoch; no heavy fence should be issued by invalidation itself. *)
  for _ = 1 to 5 do
    ignore
      (Hp_plus.try_unlink h
         ~frontier:[ Mem.make stats ]
         ~do_unlink:(fun () -> Some [ make_node stats ])
         ~node_header ~invalidate)
  done;
  Alcotest.(check int) "no heavy fence from DoInvalidation" e0
    (Hp_plus.fence_epoch t);
  (* Reclaim issues the heavy fence and releases the accumulated epoched
     hazard pointers. *)
  Hp_plus.reclaim h;
  Alcotest.(check int) "reclaim bumps fence epoch" (e0 + 1)
    (Hp_plus.fence_epoch t);
  Alcotest.(check bool) "heavy fences counted" true
    (Stats.heavy_fences stats >= 1);
  Hp_plus.unregister h

let test_hpp_backward_compatible_retire () =
  (* Classic HP-style retire works unchanged on HP++ (paper §4.2). *)
  let t = hpp_plain () in
  let h = Hp_plus.register t in
  let protector = Hp_plus.register t in
  let hdr = Mem.make (Hp_plus.stats t) in
  let g = Hp_plus.guard protector in
  Hp_plus.protect g hdr;
  Hp_plus.retire h hdr;
  Hp_plus.flush h;
  Alcotest.(check bool) "protected survives" false (Mem.is_freed hdr);
  Hp_plus.release g;
  Hp_plus.flush h;
  Alcotest.(check bool) "freed after release" true (Mem.is_freed hdr);
  Hp_plus.unregister h;
  Hp_plus.unregister protector

(* Paper §4.2 "Hybrid": one HP++ domain can serve a structure using classic
   HP-style retirement (HMList) and one using TryUnlink (HHSList) at the
   same time — Algorithm 3 extends rather than replaces the original. *)
let test_hpp_hybrid_usage () =
  let module Hm = Smr_ds.Hmlist.Make (Hp_plus) in
  let module Hhs = Smr_ds.Hhslist.Make (Hp_plus) in
  let t = Hp_plus.create () in
  let pessimistic = Hm.create t in
  let optimistic = Hhs.create t in
  let h = Hp_plus.register t in
  let lo_hm = Hm.make_local h in
  let lo_hhs = Hhs.make_local h in
  for k = 1 to 200 do
    assert (Hm.insert pessimistic lo_hm k k);
    assert (Hhs.insert optimistic lo_hhs k (k * 2))
  done;
  for k = 1 to 200 do
    if k mod 2 = 0 then begin
      assert (Hm.remove pessimistic lo_hm k);
      assert (Hhs.remove optimistic lo_hhs k)
    end
  done;
  Alcotest.(check int) "hm contents" 100 (Hm.size pessimistic);
  Alcotest.(check int) "hhs contents" 100 (Hhs.size optimistic);
  Hm.clear_local lo_hm;
  Hhs.clear_local lo_hhs;
  Hp_plus.flush h;
  Hp_plus.flush h;
  Alcotest.(check int) "shared domain drains both" 0
    (Stats.unreclaimed (Hp_plus.stats t));
  Hp_plus.unregister h

(* §4.4: a stalled participant holding protections bounds HP++'s garbage by
   what it actually protects — the robustness EBR lacks. *)
let test_hpp_robust_under_stall () =
  let t = Hp_plus.create ~config:{ cfg with reclaim_threshold = 16 } () in
  let staller = Hp_plus.register t in
  let worker = Hp_plus.register t in
  let g = Hp_plus.guard staller in
  let pinned = Mem.make (Hp_plus.stats t) in
  Hp_plus.protect g pinned;
  Hp_plus.retire worker pinned;
  for _ = 1 to 500 do
    Hp_plus.retire worker (Mem.make (Hp_plus.stats t))
  done;
  Hp_plus.flush worker;
  Alcotest.(check bool) "garbage bounded despite stalled protector" true
    (Stats.unreclaimed (Hp_plus.stats t) <= 32);
  Alcotest.(check bool) "the protected block is what survives" false
    (Mem.is_freed pinned);
  Hp_plus.release g;
  Hp_plus.flush worker;
  Alcotest.(check int) "fully drained after release" 0
    (Stats.unreclaimed (Hp_plus.stats t));
  Hp_plus.unregister staller;
  Hp_plus.unregister worker

(* --- EBR specifics ------------------------------------------------------ *)

let test_ebr_grace_period () =
  let t = Ebr.create () in
  let pinner = Ebr.register t in
  let reclaimer = Ebr.register t in
  Ebr.crit_enter pinner;
  let hdr = Mem.make (Ebr.stats t) in
  Ebr.retire reclaimer hdr;
  Ebr.flush reclaimer;
  Ebr.flush reclaimer;
  Alcotest.(check bool) "pinned epoch blocks reclamation" false
    (Mem.is_freed hdr);
  Ebr.crit_exit pinner;
  Ebr.flush reclaimer;
  Alcotest.(check bool) "freed after unpin" true (Mem.is_freed hdr);
  Ebr.unregister pinner;
  Ebr.unregister reclaimer

let test_ebr_not_robust () =
  (* A stalled critical section makes garbage grow without bound. *)
  Alcotest.(check bool) "flag" false Ebr.robust;
  let t = Ebr.create ~config:{ cfg with reclaim_threshold = 8 } () in
  let staller = Ebr.register t in
  let worker = Ebr.register t in
  Ebr.crit_enter staller;
  (* give the staller's pin one epoch of slack, then stall *)
  for _ = 1 to 500 do
    Ebr.retire worker (Mem.make (Ebr.stats t))
  done;
  Ebr.flush worker;
  Alcotest.(check bool) "garbage accumulates"
    true
    (Stats.unreclaimed (Ebr.stats t) >= 498);
  Ebr.crit_exit staller;
  Ebr.flush worker;
  Alcotest.(check int) "drains once unpinned" 0
    (Stats.unreclaimed (Ebr.stats t));
  Ebr.unregister staller;
  Ebr.unregister worker

let test_ebr_defer_runs_once () =
  let t = Ebr.create () in
  let h = Ebr.register t in
  let count = ref 0 in
  Ebr.defer h (fun () -> incr count);
  Ebr.flush h;
  Alcotest.(check int) "thunk ran once" 1 !count;
  Ebr.flush h;
  Alcotest.(check int) "not re-run" 1 !count;
  Ebr.unregister h

(* --- PEBR specifics ----------------------------------------------------- *)

let test_pebr_neutralization_unblocks_reclamation () =
  let t = Pebr.create ~config:{ cfg with reclaim_threshold = 4 } () in
  let straggler = Pebr.register t in
  let worker = Pebr.register t in
  Pebr.crit_enter straggler;
  Alcotest.(check bool) "valid at first" true (Pebr.protection_valid straggler);
  for _ = 1 to 200 do
    Pebr.retire worker (Mem.make (Pebr.stats t))
  done;
  Pebr.flush worker;
  Alcotest.(check bool) "straggler neutralized" true (Pebr.neutralized straggler);
  Alcotest.(check bool) "protection invalidated" false
    (Pebr.protection_valid straggler);
  Alcotest.(check bool) "garbage bounded despite straggler" true
    (Stats.unreclaimed (Pebr.stats t) < 100);
  (* the straggler recovers by refreshing its critical section *)
  Pebr.crit_refresh straggler;
  Alcotest.(check bool) "valid after refresh" true
    (Pebr.protection_valid straggler);
  Pebr.crit_exit straggler;
  Pebr.unregister straggler;
  Pebr.unregister worker

let test_pebr_shield_survives_neutralization () =
  let t = Pebr.create ~config:{ cfg with reclaim_threshold = 4 } () in
  let straggler = Pebr.register t in
  let worker = Pebr.register t in
  Pebr.crit_enter straggler;
  let hdr = Mem.make (Pebr.stats t) in
  let g = Pebr.guard straggler in
  Pebr.protect g hdr;
  Pebr.retire worker hdr;
  for _ = 1 to 200 do
    Pebr.retire worker (Mem.make (Pebr.stats t))
  done;
  Pebr.flush worker;
  Alcotest.(check bool) "neutralized" true (Pebr.neutralized straggler);
  Alcotest.(check bool) "shielded block survives ejection" false
    (Mem.is_freed hdr);
  Pebr.release g;
  Pebr.flush worker;
  Alcotest.(check bool) "freed after shield release" true (Mem.is_freed hdr);
  Pebr.crit_exit straggler;
  Pebr.unregister straggler;
  Pebr.unregister worker

(* --- RC specifics ------------------------------------------------------- *)

let test_rc_shared_child_cascade () =
  let t = Rc.create () in
  let h = Rc.register t in
  let stats = Rc.stats t in
  let child = Mem.make stats in
  let parent1 = Mem.make stats in
  let parent2 = Mem.make stats in
  (* Two parents link the child: one birth reference + one incr_ref. *)
  Rc.incr_ref child;
  Rc.retire_with_children h parent1 ~children:(fun () -> [ child ]);
  Rc.flush h;
  Alcotest.(check bool) "parent1 destroyed" true (Mem.is_freed parent1);
  Alcotest.(check bool) "child kept by second reference" false
    (Mem.is_freed child);
  Rc.retire_with_children h parent2 ~children:(fun () -> [ child ]);
  Rc.flush h;
  Alcotest.(check bool) "parent2 destroyed" true (Mem.is_freed parent2);
  Alcotest.(check bool) "child cascaded" true (Mem.is_freed child);
  Rc.unregister h

(* --- NR specifics ------------------------------------------------------- *)

(* --- Slot registry: chunk retirement/reuse and the sorted hazard scan --- *)

module Slots = Smr.Slots

(* Regression for the registry leak: unregister must park chunks for reuse
   so handle churn (shardkv sessions coming and going) keeps the registry —
   and therefore every future hazard scan — bounded. *)
let test_slots_registry_bounded () =
  let reg = Slots.create () in
  let stats = Stats.create () in
  let baseline = ref 0 in
  for i = 1 to 100 do
    let l = Slots.register reg in
    let s = Slots.acquire l in
    Slots.set s (Mem.make stats);
    Slots.release l s;
    Slots.unregister l;
    if i = 1 then baseline := Slots.total_slots reg
  done;
  Alcotest.(check int) "registry reuses parked chunks" !baseline
    (Slots.total_slots reg);
  (* Concurrent churn from several domains stays bounded too: at most one
     chunk per simultaneously live handle (plus the sequential baseline). *)
  ignore
    (Smr_core.Domain_pool.run ~n:4 (fun _ ->
         for _ = 1 to 50 do
           let l = Slots.register reg in
           Slots.unregister l
         done));
  Alcotest.(check bool) "bounded under concurrent churn" true
    (Slots.total_slots reg <= !baseline + (4 * 64))

let test_slots_scan_skips_parked () =
  let reg = Slots.create () in
  let stats = Stats.create () in
  let l1 = Slots.register reg in
  let l2 = Slots.register reg in
  let h1 = Mem.make stats and h2 = Mem.make stats in
  let s1 = Slots.acquire l1 in
  Slots.set s1 h1;
  let s2 = Slots.acquire l2 in
  Slots.set s2 h2;
  let scan = Slots.scan_create () in
  Slots.scan_snapshot reg scan;
  Alcotest.(check int) "two protections captured" 2 (Slots.scan_size scan);
  Alcotest.(check bool) "h1 member" true (Slots.scan_mem scan (Mem.uid h1));
  Alcotest.(check bool) "h2 member" true (Slots.scan_mem scan (Mem.uid h2));
  Alcotest.(check bool) "unknown uid is not a member" false
    (Slots.scan_mem scan (Mem.uid h1 + Mem.uid h2 + 1));
  Slots.release l2 s2;
  Slots.unregister l2;
  Slots.scan_snapshot reg scan;
  Alcotest.(check int) "parked chunk no longer scanned" 1
    (Slots.scan_size scan);
  Alcotest.(check bool) "h1 still member" true
    (Slots.scan_mem scan (Mem.uid h1));
  Alcotest.(check bool) "h2 gone" false (Slots.scan_mem scan (Mem.uid h2));
  Slots.release l1 s1;
  Slots.unregister l1

(* Enough slots to spill into several chunks and drive the quicksort path
   of the scan buffer. *)
let test_slots_scan_many () =
  let reg = Slots.create () in
  let stats = Stats.create () in
  let l = Slots.register reg in
  let hdrs = List.init 200 (fun _ -> Mem.make stats) in
  List.iter
    (fun h ->
      let s = Slots.acquire l in
      Slots.set s h)
    hdrs;
  let scan = Slots.scan_create () in
  Slots.scan_snapshot reg scan;
  Alcotest.(check int) "all protections captured" 200 (Slots.scan_size scan);
  List.iter
    (fun h ->
      if not (Slots.scan_mem scan (Mem.uid h)) then
        Alcotest.failf "uid %d missing from scan" (Mem.uid h))
    hdrs;
  Slots.unregister l;
  Slots.scan_snapshot reg scan;
  Alcotest.(check int) "empty after unregister" 0 (Slots.scan_size scan)

let test_nr_leaks () =
  let t = Nr.create () in
  let h = Nr.register t in
  let hdr = Mem.make (Nr.stats t) in
  Nr.retire h hdr;
  Nr.flush h;
  Alcotest.(check bool) "never freed" false (Mem.is_freed hdr);
  Alcotest.(check int) "counted as garbage" 1 (Stats.unreclaimed (Nr.stats t));
  Nr.unregister h

let () =
  Alcotest.run "schemes"
    [
      ("contract:HP", Contract_hp.tests);
      ("contract:HP++", Contract_hpp.tests);
      ("contract:EBR", Contract_ebr.tests);
      ("contract:PEBR", Contract_pebr.tests);
      ("contract:RC", Contract_rc.tests);
      ("contract:NR", Contract_nr.tests);
      ( "hp",
        [
          Alcotest.test_case "protection blocks free" `Quick
            test_hp_protection_blocks_free;
          Alcotest.test_case "capability flags" `Quick test_hp_not_optimistic;
        ] );
      ( "hp_plus",
        [
          Alcotest.test_case "invalidation precedes retirement" `Quick
            test_hpp_invalidation_precedes_retirement;
          Alcotest.test_case "frontier protection" `Quick
            test_hpp_frontier_protection;
          Alcotest.test_case "protect after unlink survives" `Quick
            test_hpp_protect_after_unlink_survives;
          Alcotest.test_case "epoched fence piggyback" `Quick
            test_hpp_epoched_fence_piggyback;
          Alcotest.test_case "backward compatible retire" `Quick
            test_hpp_backward_compatible_retire;
          Alcotest.test_case "hybrid usage" `Quick test_hpp_hybrid_usage;
          Alcotest.test_case "robust under stall" `Quick
            test_hpp_robust_under_stall;
        ] );
      ( "ebr",
        [
          Alcotest.test_case "grace period" `Quick test_ebr_grace_period;
          Alcotest.test_case "not robust" `Quick test_ebr_not_robust;
          Alcotest.test_case "defer runs once" `Quick test_ebr_defer_runs_once;
        ] );
      ( "pebr",
        [
          Alcotest.test_case "neutralization unblocks" `Quick
            test_pebr_neutralization_unblocks_reclamation;
          Alcotest.test_case "shield survives ejection" `Quick
            test_pebr_shield_survives_neutralization;
        ] );
      ("rc", [ Alcotest.test_case "shared child cascade" `Quick test_rc_shared_child_cascade ]);
      ("nr", [ Alcotest.test_case "leaks by design" `Quick test_nr_leaks ]);
      ( "slots",
        [
          Alcotest.test_case "registry bounded under churn" `Quick
            test_slots_registry_bounded;
          Alcotest.test_case "scan skips parked chunks" `Quick
            test_slots_scan_skips_parked;
          Alcotest.test_case "scan across many chunks" `Quick
            test_slots_scan_many;
        ] );
    ]
