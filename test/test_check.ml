(* Model-check plumbing: deterministic-scheduler replay, the sequential
   reference models and their linearizability search, corpus round-trip and
   regression replay, and the shardkv session-lifecycle ladder (including
   the detach-that-dies-mid-close edge the reaper must recover). *)

module Gen = Check.Gen
module Model = Check.Model
module Sut = Check.Sut
module Sched = Check.Sched
module Harness = Check.Harness
module Explore = Check.Explore
module Corpus = Check.Corpus

let case ?(ds = "treiber") ?(scheme = "EBR") ?(threshold = 1) ?fault
    ?(traced = false) scripts =
  {
    Harness.ds;
    scheme;
    threshold;
    scripts = Array.of_list (List.map (List.map Gen.op_of_string) scripts);
    fault;
    traced;
  }

let outcome_name = function
  | `Pass -> "pass"
  | `Overflow -> "overflow"
  | `Violation v -> "violation " ^ Harness.vkind_name v.Harness.vkind

(* --- scheduler --------------------------------------------------------- *)

let test_sched_program_order () =
  (* keep-running policy: thread 0 runs to completion before thread 1 *)
  let order = ref [] in
  let body i () = order := i :: !order in
  let out =
    Sched.run ~policy:(fun ~step:_ ~site:_ ~alts:_ -> 0) [| body 0; body 1 |]
  in
  Alcotest.(check (list int)) "order" [ 0; 1 ] (List.rev !order);
  Alcotest.(check bool) "no overflow" false out.Sched.overflowed;
  Array.iter
    (fun e -> Alcotest.(check bool) "no exn" true (e = None))
    out.Sched.exns

let test_sched_initial_decision () =
  (* the very first decision can hand the baton to the other thread *)
  let order = ref [] in
  let body i () = order := i :: !order in
  let out =
    Sched.run
      ~policy:(fun ~step ~site:_ ~alts ->
        if step = 0 then Array.length alts - 1 else 0)
      [| body 0; body 1 |]
  in
  Alcotest.(check (list int)) "order" [ 1; 0 ] (List.rev !order);
  Alcotest.(check bool) "no overflow" false out.Sched.overflowed

let determinism_case () =
  case ~ds:"treiber" ~scheme:"HP"
    [ [ "push 1001"; "pop"; "push 1002" ]; [ "pop"; "push 2001"; "pop" ] ]

let test_sched_determinism () =
  (* same seed, fresh policy instance: byte-identical schedule trace *)
  let run () =
    Harness.run_case ~policy:(Explore.random_policy ~seed:7 ())
      (determinism_case ())
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check string)
    "trail" (Harness.render_trail r1.trail) (Harness.render_trail r2.trail);
  Alcotest.(check (list int))
    "choices"
    (Array.to_list r1.choices)
    (Array.to_list r2.choices);
  Alcotest.(check string) "outcome" (outcome_name r1.outcome)
    (outcome_name r2.outcome)

let test_sched_trail_traced_invariant () =
  (* recording a trace must not change the schedule: yields fire on the
     sched bit alone, so the trail is identical traced or bare *)
  let bare =
    Harness.run_case
      ~policy:(Explore.random_policy ~seed:11 ())
      (determinism_case ())
  in
  let traced =
    Harness.run_case
      ~policy:(Explore.random_policy ~seed:11 ())
      { (determinism_case ()) with Harness.traced = true }
  in
  Alcotest.(check string)
    "trail" (Harness.render_trail bare.trail)
    (Harness.render_trail traced.trail)

(* --- sequential models and the linearizability search ------------------ *)

let entry ?(killed = false) op res inv ret =
  { Model.op = Gen.op_of_string op; res; inv; ret; killed }

let kentry op inv = entry ~killed:true op Model.RUnit inv max_int

let check_stack entries final =
  Model.check Gen.KStack ~entries ~final:(Some (Model.SStack final))

let test_model_linearizes () =
  Alcotest.(check bool) "push then pop" true
    (check_stack
       [ entry "push 1001" Model.RUnit 0 1;
         entry "pop" (Model.ROpt (Some 1001)) 2 3 ]
       []);
  (* overlapping ops may commute either way *)
  Alcotest.(check bool) "concurrent push/pop" true
    (check_stack
       [ entry "push 1001" Model.RUnit 0 3;
         entry "pop" (Model.ROpt None) 1 2 ]
       [ 1001 ])

let test_model_rejects_real_time_order () =
  (* pop returned the value before the push was even invoked *)
  Alcotest.(check bool) "no time travel" false
    (check_stack
       [ entry "pop" (Model.ROpt (Some 1001)) 0 1;
         entry "push 1001" Model.RUnit 2 3 ]
       [])

let test_model_rejects_final_mismatch () =
  Alcotest.(check bool) "final contents must be reachable" false
    (check_stack [ entry "push 1001" Model.RUnit 0 1 ] [])

let test_model_killed_optional () =
  (* a killed push may have taken effect... *)
  Alcotest.(check bool) "killed applied" true
    (check_stack
       [ kentry "push 1001" 0; entry "pop" (Model.ROpt (Some 1001)) 2 3 ]
       []);
  (* ...or not *)
  Alcotest.(check bool) "killed dropped" true
    (check_stack
       [ kentry "push 1001" 0; entry "pop" (Model.ROpt None) 2 3 ]
       [])

(* --- corpus ------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  let e =
    {
      Corpus.case =
        case ~ds:"msqueue" ~scheme:"PEBR" ~threshold:3
          ~fault:(Fault.Retire, 2) ~traced:true
          [ [ "enq 1001"; "deq" ]; [ "deq" ] ];
      choices = [| 0; 1; 1; 0 |];
      expect = Some Harness.Uaf;
      notes = [ "hand-written round-trip fixture" ];
    }
  in
  let e' = Corpus.of_string (Corpus.to_string e) in
  Alcotest.(check string)
    "case" (Harness.case_to_string e.case)
    (Harness.case_to_string e'.case);
  Alcotest.(check (list int))
    "choices"
    (Array.to_list e.choices)
    (Array.to_list e'.choices);
  Alcotest.(check bool) "expect" true (e'.expect = Some Harness.Uaf);
  Alcotest.(check bool) "traced" true e'.case.traced

let corpus_dir () =
  (* dune runtest runs in _build/default/test (where the dep glob copies
     the corpus); dune exec from the project root does not *)
  List.find Sys.file_exists
    [
      "check_corpus";
      "test/check_corpus";
      Filename.concat (Filename.dirname Sys.executable_name) "check_corpus";
    ]

let test_corpus_replay () =
  (* every pinned counterexample must pass on the fixed tree *)
  let dir = corpus_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let r = Corpus.replay (Corpus.load (Filename.concat dir f)) in
      Alcotest.(check string) f "pass" (outcome_name r.outcome))
    files

(* --- pinned regressions ------------------------------------------------ *)

let test_msqueue_to_list_after_dequeue () =
  (* direct form of check_corpus/msqueue-to-list-model.case: the value left
     on the node that becomes the dummy must not reappear in to_list *)
  match Sut.find ~ds:"msqueue" ~scheme:"EBR" with
  | None -> Alcotest.fail "msqueue/EBR SUT missing"
  | Some m ->
      let module M = (val m : Sut.SUT) in
      let t = M.make ~threshold:4 in
      let l = M.attach t in
      ignore (M.apply t l (Gen.Enq 1001));
      ignore (M.apply t l (Gen.Enq 1002));
      Alcotest.(check bool) "deq" true
        (M.apply t l Gen.Deq = Model.ROpt (Some 1001));
      Alcotest.(check bool) "contents" true
        (M.contents t = Model.SQueue [ 1002 ]);
      M.detach t l;
      M.drain t

(* --- shardkv session lifecycle ----------------------------------------- *)

module Kv = Service.Shardkv.Make (Ebr)

let kv_state (s : Kv.session) = Atomic.get s.Kv.state

let test_shardkv_detach_then_crash () =
  let t = Kv.create ~shards:1 ~buckets_per_shard:4 () in
  let s = Kv.attach t in
  ignore (Kv.put_s t s 1 10);
  Kv.detach_session s;
  Alcotest.(check int) "detached" Kv.session_detached (kv_state s);
  (* a late crash report must not resurrect a cleanly closed session *)
  Kv.crash s;
  Alcotest.(check int) "still detached" Kv.session_detached (kv_state s);
  Alcotest.(check int) "nothing to reap" 0 (Kv.reap_dead t);
  Kv.shutdown t

let test_shardkv_crash_then_detach () =
  let t = Kv.create ~shards:1 ~buckets_per_shard:4 () in
  let s = Kv.attach t in
  ignore (Kv.put_s t s 1 10);
  Kv.crash s;
  (* the owner's close must not run unregister on a crashed session *)
  Kv.detach_session s;
  Alcotest.(check int) "dead" Kv.session_dead (kv_state s);
  Alcotest.(check int) "reaped once" 1 (Kv.reap_dead t);
  Alcotest.(check int) "reap is idempotent" 0 (Kv.reap_dead t);
  Alcotest.(check int) "reaped" Kv.session_reaped (kv_state s);
  Kv.shutdown t

let test_shardkv_kill_mid_detach () =
  (* a detach that dies inside unregister (kill at the reclamation-pass
     entry) must leave the session dead — claimable by reap_dead — not
     committed to detached with its registration stranded *)
  let config =
    { Smr.Smr_intf.default_config with reclaim_threshold = 1 lsl 20 }
  in
  let t = Kv.create ~config ~shards:1 ~buckets_per_shard:4 () in
  let s = Kv.attach t in
  ignore (Kv.put_s t s 1 10);
  ignore (Kv.delete_s t s 1);
  (* the delete's node now sits in the victim's retire bag *)
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm ~point:Fault.Reclaim ~action:Fault.Kill ~after:1 ();
  (match Kv.detach_session s with
  | () -> Alcotest.fail "expected the kill to land inside unregister"
  | exception Fault.Killed _ -> ());
  Fault.reset ();
  Alcotest.(check int) "dead, not stranded" Kv.session_dead (kv_state s);
  Alcotest.(check int) "reaper claims it" 1 (Kv.reap_dead t);
  (* re-detach after the reap stays a no-op *)
  Kv.detach_session s;
  Alcotest.(check int) "reaped state sticks" Kv.session_reaped (kv_state s);
  (* survivors can drain the adopted bag: nothing is stranded *)
  let h = Ebr.register (Kv.scheme t) in
  for _ = 1 to 8 do
    Ebr.flush h
  done;
  Ebr.unregister h;
  Alcotest.(check int) "no stranded garbage" 0
    (Smr_core.Stats.unreclaimed (Kv.stats t));
  Kv.shutdown t

let test_shardkv_ladder_enumerated () =
  (* bounded-exhaustive sweep of the ladder under the deterministic
     scheduler: two sessions run ops and detach in-schedule while a kill is
     armed at the first reclamation pass — whichever side it lands on
     (operation or mid-detach), recovery must leave every schedule clean *)
  let c =
    case ~ds:"shardkv" ~scheme:"EBR" ~threshold:1
      ~fault:(Fault.Reclaim, 1)
      [ [ "ins 1 10"; "del 1" ]; [ "ins 2 20" ] ]
  in
  match
    Explore.dfs ~preemptions:2 ~max_wall_ms:30_000 (fun policy ->
        Harness.run_case ~policy c)
  with
  | `Found (r, _) ->
      Alcotest.fail
        (match r.outcome with
        | `Violation v -> Harness.vkind_name v.vkind ^ ": " ^ v.detail
        | _ -> "unexpected")
  | `Clean n -> Alcotest.(check bool) "explored schedules" true (n > 0)
  | `Budget _ -> () (* wall-capped, still no violation *)

let () =
  Alcotest.run "check"
    [
      ( "sched",
        [
          Alcotest.test_case "program order" `Quick test_sched_program_order;
          Alcotest.test_case "initial decision" `Quick
            test_sched_initial_decision;
          Alcotest.test_case "determinism" `Quick test_sched_determinism;
          Alcotest.test_case "trail invariant under tracing" `Quick
            test_sched_trail_traced_invariant;
        ] );
      ( "model",
        [
          Alcotest.test_case "linearizes" `Quick test_model_linearizes;
          Alcotest.test_case "rejects real-time order" `Quick
            test_model_rejects_real_time_order;
          Alcotest.test_case "rejects final mismatch" `Quick
            test_model_rejects_final_mismatch;
          Alcotest.test_case "killed ops optional" `Quick
            test_model_killed_optional;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "replay" `Quick test_corpus_replay;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "msqueue to_list after dequeue" `Quick
            test_msqueue_to_list_after_dequeue;
        ] );
      ( "shardkv-ladder",
        [
          Alcotest.test_case "detach then crash" `Quick
            test_shardkv_detach_then_crash;
          Alcotest.test_case "crash then detach" `Quick
            test_shardkv_crash_then_detach;
          Alcotest.test_case "kill mid-detach" `Quick
            test_shardkv_kill_mid_detach;
          Alcotest.test_case "enumerated interleavings" `Slow
            test_shardkv_ladder_enumerated;
        ] );
    ]
