(* Tests for the smr_lint static analyzer (lib/analysis): one known-bad
   fixture per rule that must fire, known-good fixtures that must stay
   silent, and the pragma machinery (suppression, mandatory reasons, unused
   and malformed pragmas as findings). Fixtures are parsed, never typed, so
   they only need to be syntactically valid OCaml. *)

module Engine = Analysis.Engine
module Finding = Analysis.Finding

(* Fixture paths carry the scope components the engine dispatches on; the
   leading /virtual/ segment checks that scope matching is anchored to the
   lib/... suffix, not to the tree root. *)
let ds_path = "/virtual/lib/ds/fixture.ml"
let scheme_path = "/virtual/lib/core/fixture.ml"
let smr_path = "/virtual/lib/smr/fixture.ml"

let analyze ?(mli_exists = true) ~path text =
  Engine.analyze_source ~mli_exists ~path text

let rule_ids findings = List.map (fun (f : Finding.t) -> f.rule.id) findings

let check_fires name rule ~path ?mli_exists text =
  let findings, _ = analyze ~path ?mli_exists text in
  Alcotest.(check bool)
    (name ^ ": " ^ rule ^ " fires")
    true
    (List.mem rule (rule_ids findings))

let check_silent name ~path ?mli_exists text =
  let findings, _ = analyze ~path ?mli_exists text in
  Alcotest.(check (list string)) (name ^ ": silent") [] (rule_ids findings)

(* --- R1: raw-link-deref --------------------------------------------------- *)

let r1_bad =
  {|
let lookup t key =
  let rec go l =
    match Tagged.ptr (Link.get l) with
    | None -> None
    | Some n -> if n.key = key then Some n.value else go n.next
  in
  go t.head
|}

(* Same shape, but the traversal validates each step through try_protect. *)
let r1_good_protected =
  {|
let lookup t l key =
  let rec go src link expected =
    match C.try_protect ~src ~node_header l.hp link expected with
    | C.Invalid -> None
    | C.Ok cur -> (
        match Tagged.ptr cur with
        | None -> None
        | Some n -> if n.key = key then Some n.value else go None n.next cur)
  in
  go None t.head (Link.get t.head)
|}

(* Raw read without dereferencing the fetched node (Treiber push). *)
let r1_good_no_deref =
  {|
let push t v =
  let n = { value = v; next = Link.make Tagged.null } in
  let rec loop () =
    let h = Link.get t.head in
    Link.set n.next h;
    if not (Link.cas t.head h (Tagged.make (Some n))) then loop ()
  in
  loop ()
|}

let test_r1 () =
  check_fires "raw traversal" "R1" ~path:ds_path r1_bad;
  (* taint must flow through a helper call argument, not just let/match *)
  check_fires "flow through local call" "R1" ~path:ds_path
    {|
let to_list t =
  let rec walk acc tg =
    match Tagged.ptr tg with
    | None -> List.rev acc
    | Some n -> walk (n.value :: acc) (Link.get n.next)
  in
  walk [] (Link.get t.head)
|};
  check_silent "protected traversal" ~path:ds_path r1_good_protected;
  check_silent "no deref of fetched node" ~path:ds_path r1_good_no_deref;
  (* out of scope: the same raw traversal in scheme code is not R1's business *)
  check_silent "out of ds scope" ~path:scheme_path r1_bad

(* --- R2: invalidate-before-free ------------------------------------------ *)

let r2_bad =
  {|
let flush d =
  List.iter (fun h -> Mem.free_mark h) d.bag;
  do_invalidation d.bag;
  d.bag <- []
|}

let r2_good =
  {|
let flush d =
  do_invalidation d.bag;
  List.iter (fun h -> Mem.free_mark h) d.bag;
  d.bag <- []
|}

let test_r2 () =
  check_fires "free before invalidation" "R2" ~path:scheme_path r2_bad;
  check_silent "invalidation first" ~path:scheme_path r2_good;
  (* a function that only frees (classic HP reclaim) has no ordering to get
     wrong *)
  check_silent "free only" ~path:scheme_path
    "let reclaim_all d = List.iter Mem.free_mark d.bag"

(* --- R3: shared-mutable-field --------------------------------------------- *)

let r3_bad =
  {|
type slot = { value : int Atomic.t; mutable owner : int }
|}

(* The mutable field lives one type away from the Atomic-bearing record;
   reachability must still find it. *)
let r3_bad_reachable =
  {|
type chunk = { mutable cursor : int }
type registry = { head : chunk Atomic.t; chunks : chunk list }
|}

let r3_good_handle =
  {|
type shared = { head : int Atomic.t }
type handle = { shared : shared; mutable my_epoch : int }
|}

let test_r3 () =
  check_fires "mutable next to Atomic" "R3" ~path:smr_path r3_bad;
  check_fires "mutable reachable from Atomic" "R3" ~path:smr_path
    r3_bad_reachable;
  (* the handle/shared split: mutables in per-domain handle types are the
     sanctioned pattern, not a race *)
  check_silent "per-handle mutable" ~path:smr_path r3_good_handle;
  check_silent "out of shared-state scope" ~path:ds_path r3_bad

(* --- R4: unguarded-trace-alloc -------------------------------------------- *)

let r4_bad =
  {|
let record t n = Trace.emit Trace.Retire (List.length (collect t n)) 0 0
|}

let r4_good_guarded =
  {|
let record t n =
  if Trace.enabled () then
    Trace.emit Trace.Retire (List.length (collect t n)) 0 0
|}

let r4_good_simple =
  {|
let record h tag = Trace.emit Trace.Retire (Mem.uid h) (tag land 3) 0
|}

let test_r4 () =
  check_fires "allocating args unguarded" "R4" ~path:smr_path r4_bad;
  check_silent "guarded" ~path:smr_path r4_good_guarded;
  check_silent "simple args need no guard" ~path:smr_path r4_good_simple;
  (* negated guard shape: emit in the else branch *)
  check_silent "negated guard" ~path:smr_path
    {|
let record t n =
  if not (Trace.enabled ()) then ()
  else Trace.emit Trace.Retire (List.length (collect t n)) 0 0
|}

(* --- R5: missing-mli ------------------------------------------------------- *)

let test_r5 () =
  check_fires "no mli" "R5" ~path:smr_path ~mli_exists:false "let x = 1";
  check_silent "mli present" ~path:smr_path ~mli_exists:true "let x = 1";
  (* out of lib scope entirely: nothing runs *)
  check_silent "outside lib" ~path:"/virtual/bin/fixture.ml" ~mli_exists:false
    "let x = 1"

(* --- pragmas --------------------------------------------------------------- *)

let test_pragma_suppression () =
  let text =
    {|
let lookup t key =
  let rec go l =
    match Tagged.ptr (Link.get l) with
    | None -> None
    (* smr-lint: allow R1 — fixture: reads run quiescently *)
    | Some n -> if n.key = key then Some n.value else go n.next
  in
  go t.head
|}
  in
  let findings, suppressed = analyze ~path:ds_path text in
  Alcotest.(check (list string)) "suppressed cleanly" [] (rule_ids findings);
  Alcotest.(check int) "one suppression" 1 (List.length suppressed);
  let f, reason = List.hd suppressed in
  Alcotest.(check string) "right rule" "R1" f.Finding.rule.id;
  Alcotest.(check string) "reason recorded" "fixture: reads run quiescently"
    reason

let test_pragma_slug_and_file_scope () =
  (* R5 is file-scope: a pragma anywhere in the file suppresses it, and the
     slug works as well as the id *)
  let findings, suppressed =
    analyze ~path:smr_path ~mli_exists:false
      "let x = 1\n\
       (* smr-lint: allow missing-mli — fixture: interface intentionally \
       open *)\n"
  in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids findings);
  Alcotest.(check int) "one suppression" 1 (List.length suppressed)

let test_pragma_wrong_line_does_not_suppress () =
  (* line-scope rules need the pragma on the finding line or the line above;
     a far-away pragma suppresses nothing and is itself flagged as unused *)
  let text =
    "(* smr-lint: allow R1 — fixture: too far from the finding *)\n\
     let a = 0\n\
     let b = 0\n\
     let lookup t =\n\
    \  match Tagged.ptr (Link.get t.head) with\n\
     | Some n -> Some n.value\n\
     | None -> None\n"
  in
  let findings, _ = analyze ~path:ds_path text in
  let ids = rule_ids findings in
  Alcotest.(check bool) "R1 still fires" true (List.mem "R1" ids);
  Alcotest.(check bool) "pragma flagged unused" true (List.mem "P1" ids)

let test_unused_pragma_flagged () =
  let findings, _ =
    analyze ~path:smr_path
      "(* smr-lint: allow R2 — fixture: nothing here frees anything *)\n\
       let x = 1"
  in
  Alcotest.(check (list string)) "unused pragma is a finding" [ "P1" ]
    (rule_ids findings)

let test_reasonless_pragma_rejected () =
  (* no reason, and a reason-separator with nothing after it: both malformed *)
  List.iter
    (fun text ->
      let findings, _ = analyze ~path:smr_path text in
      Alcotest.(check (list string)) "malformed pragma is a finding" [ "P2" ]
        (rule_ids findings))
    [
      "(* smr-lint: allow R2 *)\nlet x = 1";
      "(* smr-lint: allow R2 -- *)\nlet x = 1";
      "(* smr-lint: disallow R2 -- backwards *)\nlet x = 1";
    ]

let test_marker_mention_is_not_a_pragma () =
  (* the marker inside a string or mid-comment prose must not parse as a
     pragma (and so must not be flagged as unused either) *)
  let findings, suppressed =
    analyze ~path:smr_path
      "let doc = \"write smr-lint: allow R1 -- like this\"\nlet x = doc"
  in
  Alcotest.(check (list string)) "no findings" [] (rule_ids findings);
  Alcotest.(check int) "no suppressions" 0 (List.length suppressed)

let test_parse_error_reported () =
  let findings, _ = analyze ~path:smr_path "let x = (" in
  Alcotest.(check (list string)) "parse failure surfaces as E0" [ "E0" ]
    (rule_ids findings)

(* --- end to end over the real tree ---------------------------------------- *)

let test_repo_is_clean () =
  (* the burn-in contract: the analyzer over lib/ reports nothing, and every
     suppression carries a reason *)
  let report = Engine.run [ "lib" ] in
  List.iter
    (fun (f : Finding.t) -> Printf.eprintf "%s\n" (Finding.to_human f))
    report.Engine.findings;
  Alcotest.(check int) "no findings on lib/" 0
    (List.length report.Engine.findings);
  Alcotest.(check bool) "analyzed a real number of files" true
    (report.Engine.files > 40);
  List.iter
    (fun ((f : Finding.t), reason) ->
      Alcotest.(check bool)
        (Printf.sprintf "suppression at %s:%d has a reason" f.Finding.file
           f.Finding.line)
        true
        (String.length reason > 10))
    report.Engine.suppressed

let () =
  (* dune runs tests from test/_build-adjacent cwd; hop to the repo root so
     Engine.run [ "lib" ] sees the sources *)
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent
  in
  (match find_root (Sys.getcwd ()) with
  | Some root -> Sys.chdir root
  | None -> ());
  Alcotest.run "analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 raw-link-deref" `Quick test_r1;
          Alcotest.test_case "R2 invalidate-before-free" `Quick test_r2;
          Alcotest.test_case "R3 shared-mutable-field" `Quick test_r3;
          Alcotest.test_case "R4 unguarded-trace-alloc" `Quick test_r4;
          Alcotest.test_case "R5 missing-mli" `Quick test_r5;
          Alcotest.test_case "parse error reported" `Quick
            test_parse_error_reported;
        ] );
      ( "pragmas",
        [
          Alcotest.test_case "suppresses with reason" `Quick
            test_pragma_suppression;
          Alcotest.test_case "slug + file scope" `Quick
            test_pragma_slug_and_file_scope;
          Alcotest.test_case "wrong line does not suppress" `Quick
            test_pragma_wrong_line_does_not_suppress;
          Alcotest.test_case "unused pragma flagged" `Quick
            test_unused_pragma_flagged;
          Alcotest.test_case "reasonless pragma rejected" `Quick
            test_reasonless_pragma_rejected;
          Alcotest.test_case "marker mention is not a pragma" `Quick
            test_marker_mention_is_not_a_pragma;
        ] );
      ( "burn-in",
        [ Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean ] );
    ]
