(* Tests for the smr_lint static analyzer (lib/analysis), v2 layering:
   the legacy syntactic rules (R1 under --v1 only, R2-R5 as the fast
   pre-pass), the flow rules F1-F7 produced by the dataflow engine, the
   engine internals (lattice laws, CFG corner cases, summary fixpoint on
   mutual recursion), pinned output formats, the pragma machinery, and the
   seeded-bug corpus matrix over test/lint_corpus/. Fixtures are parsed,
   never typed, so they only need to be syntactically valid OCaml. *)

module Engine = Analysis.Engine
module Finding = Analysis.Finding
module Lattice = Analysis.Lattice
module Summary = Analysis.Summary
module Rules_flow = Analysis.Rules_flow
module Sarif = Analysis.Sarif

(* Fixture paths carry the scope components the engine dispatches on; the
   leading /virtual/ segment checks that scope matching is anchored to the
   lib/... suffix, not to the tree root. *)
let ds_path = "/virtual/lib/ds/fixture.ml"
let scheme_path = "/virtual/lib/core/fixture.ml"
let smr_path = "/virtual/lib/smr/fixture.ml"
let misc_path = "/virtual/lib/misc/fixture.ml"

let analyze ?(mli_exists = true) ?v1 ~path text =
  Engine.analyze_source ~mli_exists ?v1 ~path text

let rule_ids findings = List.map (fun (f : Finding.t) -> f.rule.id) findings

let check_fires name rule ~path ?mli_exists ?v1 text =
  let findings, _ = analyze ~path ?mli_exists ?v1 text in
  Alcotest.(check bool)
    (name ^ ": " ^ rule ^ " fires")
    true
    (List.mem rule (rule_ids findings))

let check_silent name ~path ?mli_exists ?v1 text =
  let findings, _ = analyze ~path ?mli_exists ?v1 text in
  Alcotest.(check (list string)) (name ^ ": silent") [] (rule_ids findings)

(* --- R1: raw-link-deref (legacy, --v1 only; subsumed by F1) ---------------- *)

let r1_bad =
  {|
let lookup t key =
  let rec go l =
    match Tagged.ptr (Link.get l) with
    | None -> None
    | Some n -> if n.key = key then Some n.value else go n.next
  in
  go t.head
|}

(* Same shape, but the traversal validates each step through try_protect. *)
let r1_good_protected =
  {|
let lookup t l key =
  let rec go src link expected =
    match C.try_protect ~src ~node_header l.hp link expected with
    | C.Invalid -> None
    | C.Ok cur -> (
        match Tagged.ptr cur with
        | None -> None
        | Some n -> if n.key = key then Some n.value else go None n.next cur)
  in
  go None t.head (Link.get t.head)
|}

(* Raw read without dereferencing the fetched node (Treiber push). *)
let r1_good_no_deref =
  {|
let push t v =
  let n = { value = v; next = Link.make Tagged.null } in
  let rec loop () =
    let h = Link.get t.head in
    Link.set n.next h;
    if not (Link.cas t.head h (Tagged.make (Some n))) then loop ()
  in
  loop ()
|}

let test_r1 () =
  check_fires "raw traversal" "R1" ~path:ds_path ~v1:true r1_bad;
  (* taint must flow through a helper call argument, not just let/match *)
  check_fires "flow through local call" "R1" ~path:ds_path ~v1:true
    {|
let to_list t =
  let rec walk acc tg =
    match Tagged.ptr tg with
    | None -> List.rev acc
    | Some n -> walk (n.value :: acc) (Link.get n.next)
  in
  walk [] (Link.get t.head)
|};
  check_silent "protected traversal" ~path:ds_path ~v1:true r1_good_protected;
  check_silent "no deref of fetched node" ~path:ds_path ~v1:true
    r1_good_no_deref;
  (* out of scope: the same raw traversal in scheme code is not R1's business *)
  check_silent "out of ds scope" ~path:scheme_path ~v1:true r1_bad;
  (* v2 default: R1 itself stays off, its job is F1's now *)
  let findings, _ = analyze ~path:ds_path r1_bad in
  Alcotest.(check bool)
    "R1 off by default" false
    (List.mem "R1" (rule_ids findings))

(* --- R2: invalidate-before-free ------------------------------------------ *)

let r2_bad =
  {|
let flush d =
  List.iter (fun h -> Mem.free_mark h) d.bag;
  do_invalidation d.bag;
  d.bag <- []
|}

let r2_good =
  {|
let flush d =
  do_invalidation d.bag;
  List.iter (fun h -> Mem.free_mark h) d.bag;
  d.bag <- []
|}

let test_r2 () =
  check_fires "free before invalidation" "R2" ~path:scheme_path r2_bad;
  check_silent "invalidation first" ~path:scheme_path r2_good;
  (* a function that only frees (classic HP reclaim) has no ordering to get
     wrong *)
  check_silent "free only" ~path:scheme_path
    "let reclaim_all d = List.iter Mem.free_mark d.bag"

(* --- R3: shared-mutable-field --------------------------------------------- *)

let r3_bad =
  {|
type slot = { value : int Atomic.t; mutable owner : int }
|}

(* The mutable field lives one type away from the Atomic-bearing record;
   reachability must still find it. *)
let r3_bad_reachable =
  {|
type chunk = { mutable cursor : int }
type registry = { head : chunk Atomic.t; chunks : chunk list }
|}

let r3_good_handle =
  {|
type shared = { head : int Atomic.t }
type handle = { shared : shared; mutable my_epoch : int }
|}

let test_r3 () =
  check_fires "mutable next to Atomic" "R3" ~path:smr_path r3_bad;
  check_fires "mutable reachable from Atomic" "R3" ~path:smr_path
    r3_bad_reachable;
  (* the handle/shared split: mutables in per-domain handle types are the
     sanctioned pattern, not a race *)
  check_silent "per-handle mutable" ~path:smr_path r3_good_handle;
  check_silent "out of shared-state scope" ~path:ds_path r3_bad

(* --- R4: unguarded-trace-alloc -------------------------------------------- *)

let r4_bad =
  {|
let record t n = Trace.emit Trace.Retire (List.length (collect t n)) 0 0
|}

let r4_good_guarded =
  {|
let record t n =
  if Trace.enabled () then
    Trace.emit Trace.Retire (List.length (collect t n)) 0 0
|}

let r4_good_simple =
  {|
let record h tag = Trace.emit Trace.Retire (Mem.uid h) (tag land 3) 0
|}

let test_r4 () =
  check_fires "allocating args unguarded" "R4" ~path:smr_path r4_bad;
  check_silent "guarded" ~path:smr_path r4_good_guarded;
  check_silent "simple args need no guard" ~path:smr_path r4_good_simple;
  (* negated guard shape: emit in the else branch *)
  check_silent "negated guard" ~path:smr_path
    {|
let record t n =
  if not (Trace.enabled ()) then ()
  else Trace.emit Trace.Retire (List.length (collect t n)) 0 0
|}

(* --- R5: missing-mli ------------------------------------------------------- *)

let test_r5 () =
  check_fires "no mli" "R5" ~path:smr_path ~mli_exists:false "let x = 1";
  check_silent "mli present" ~path:smr_path ~mli_exists:true "let x = 1";
  (* out of lib scope entirely: nothing runs *)
  check_silent "outside lib" ~path:"/virtual/bin/fixture.ml" ~mli_exists:false
    "let x = 1"

(* --- F1/F2: must-dominate deref and protected escape ----------------------- *)

let test_f1_basics () =
  check_fires "raw traversal" "F1" ~path:ds_path r1_bad;
  check_silent "protected traversal" ~path:ds_path r1_good_protected;
  check_silent "no deref of fetched node" ~path:ds_path r1_good_no_deref;
  check_silent "out of ds scope" ~path:scheme_path r1_bad;
  (* announced but never validated: still F1 *)
  check_fires "protected but never validated" "F1" ~path:ds_path
    {|
let peek t l =
  let cur = Link.get t.head in
  S.protect l.hp cur;
  match Tagged.ptr cur with Some n -> n.key | None -> 0
|}

(* Must-dominate at a join: one branch validates, the other does not, so
   the deref below the merge is still an error; the twin validating on
   every path is silent. *)
let test_f1_join () =
  check_fires "conditional validation" "F1" ~path:ds_path
    {|
let lookup t l b =
  let cur = Link.get t.head in
  S.protect l.hp cur;
  (if b then if not (S.protection_valid l.handle) then raise Exit);
  match Tagged.ptr cur with Some n -> n.key | None -> 0
|};
  check_silent "unconditional validation" ~path:ds_path
    {|
let lookup t l =
  let cur = Link.get t.head in
  S.protect l.hp cur;
  if not (S.protection_valid l.handle) then raise Exit;
  match Tagged.ptr cur with Some n -> n.key | None -> 0
|}

(* CFG corner cases: the deref lives in a while-loop condition, in a try
   handler, and under a validate-or-raise guarded by a local handler. *)
let test_f1_cfg_corners () =
  check_fires "deref in while condition" "F1" ~path:ds_path
    {|
let spin t =
  while (match Tagged.ptr (Link.get t.head) with Some n -> n.key = 0 | None -> false) do
    ignore (Link.get t.head)
  done
|};
  check_fires "deref in exception handler" "F1" ~path:ds_path
    {|
let risky t =
  try find t with Not_found ->
    (match Tagged.ptr (Link.get t.head) with Some n -> n.key | None -> 0)
|};
  check_silent "validate-or-raise with local handler" ~path:ds_path
    {|
let safe t l =
  try
    let cur = Link.get t.head in
    S.protect l.hp cur;
    if not (S.protection_valid l.handle) then raise Restart;
    match Tagged.ptr cur with Some n -> Some n.key | None -> None
  with Restart -> None
|}

(* Interprocedural summaries: the deref hides inside a helper, the caller
   supplies the pointer. *)
let test_f1_interprocedural () =
  check_fires "raw arg into deref-ing helper" "F1" ~path:ds_path
    {|
let read_key n = n.key

let lookup t =
  match Tagged.ptr (Link.get t.head) with
  | None -> 0
  | Some n -> read_key n
|};
  check_silent "validated arg into deref-ing helper" ~path:ds_path
    {|
let read_key n = n.key

let lookup t l =
  match C.try_protect ~src:None ~node_header l.hp t.head (Link.get t.head) with
  | C.Invalid -> 0
  | C.Ok cur -> (
      match Tagged.ptr cur with None -> 0 | Some n -> read_key n)
|}

let test_f2 () =
  check_fires "return of merely-Protected" "F2" ~path:ds_path
    {|
let peek t l =
  let cur = Link.get t.head in
  S.protect l.hp cur;
  Tagged.ptr cur
|};
  check_silent "validated before escape" ~path:ds_path
    {|
let peek t l =
  let cur = Link.get t.head in
  S.protect l.hp cur;
  if S.protection_valid l.handle then Tagged.ptr cur else None
|}

(* --- F3: retire discipline -------------------------------------------------- *)

let test_f3 () =
  check_fires "retire after publish" "F3" ~path:ds_path
    {|
let push t l v =
  let n = { value = v; next = Link.make Tagged.null } in
  let h = Link.get t.head in
  Link.set n.next h;
  if Link.cas t.head h (Tagged.make (Some n)) then S.retire l.handle n
|};
  check_fires "deref of retired param" "F3" ~path:ds_path
    {|
let drop l cur =
  S.retire l.handle cur;
  ignore cur.value
|};
  (* Treiber pop: unlink first, and the retiring domain may still read the
     node under its own (still-held) validated protection *)
  check_silent "unlink then retire" ~path:ds_path
    {|
let pop t l =
  match C.try_protect ~src:None ~node_header l.hp t.head (Link.get t.head) with
  | C.Invalid -> None
  | C.Ok cur -> (
      match Tagged.ptr cur with
      | None -> None
      | Some n ->
          if Link.cas t.head cur (Link.get n.next) then begin
            S.retire l.handle cur;
            Some n.value
          end
          else None)
|}

(* --- F4: collector handoff -------------------------------------------------- *)

let test_f4 () =
  check_fires "bag used after successful offer" "F4" ~path:smr_path
    {|
let flush t =
  let bag = t.pending in
  if Collector.offer t.ring bag then
    List.iter (fun h -> Mem.free_mark h) bag
  else push_back t bag
|};
  check_silent "bag replaced on success, freed on failure" ~path:smr_path
    {|
let flush t =
  let bag = t.pending in
  if Collector.offer t.ring bag then t.pending <- []
  else List.iter (fun h -> Mem.free_mark h) bag
|}

(* --- F5: crit hygiene -------------------------------------------------------- *)

let test_f5 () =
  check_fires "blocking write inside crit" "F5" ~path:misc_path
    {|
let publish handle stats fd page =
  with_crit handle stats (fun () ->
      ignore (Unix.write fd page 0 (Bytes.length page)))
|};
  check_silent "blocking write after crit" ~path:misc_path
    {|
let publish handle stats fd =
  let page = with_crit handle stats (fun () -> render stats) in
  ignore (Unix.write fd page 0 (Bytes.length page))
|}

(* --- F6: counter read order (the PR 2 stats bug shape) ----------------------- *)

let test_f6 () =
  check_fires "both operands sweep counters" "F6" ~path:misc_path
    "let unreclaimed s = retired_total s - freed s";
  check_silent "increasing side bound first" ~path:misc_path
    "let unreclaimed s =\n  let r = retired_total s in\n  r - freed s"

(* --- F7: quiescent mixing ---------------------------------------------------- *)

let test_f7 () =
  check_fires "quiescent read in a CASing function" "F7" ~path:ds_path
    {|
let rotate t =
  let cur = Link.get_quiescent t.head in
  ignore (Link.cas t.head cur cur)
|};
  check_silent "quiescent-only sweep" ~path:ds_path
    {|
let length t =
  let rec go acc l =
    match Tagged.ptr (Link.get_quiescent l) with
    | None -> acc
    | Some n -> go (acc + 1) n.next
  in
  go 0 t.head
|}

(* --- Engine internals: lattice laws ------------------------------------------ *)

let st = Alcotest.testable (Fmt.of_to_string Lattice.to_string) Lattice.equal

let test_lattice_laws () =
  let all = Lattice.all in
  List.iter
    (fun a ->
      Alcotest.check st "join idempotent" a (Lattice.join a a);
      Alcotest.check st "widen = join on idem" (Lattice.widen a a)
        (Lattice.join a a);
      Alcotest.check st "Bot left identity" a (Lattice.join Lattice.Bot a);
      Alcotest.check st "Bot right identity" a (Lattice.join a Lattice.Bot);
      Alcotest.(check bool) "leq reflexive" true (Lattice.leq a a))
    all;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = Lattice.join a b in
          Alcotest.check st "join commutative" j (Lattice.join b a);
          Alcotest.check st "widen agrees with join" j (Lattice.widen a b);
          (* total order by rank: a merge never invents a third state, and
             the less-protected side wins *)
          Alcotest.(check bool)
            "join is a chain merge" true
            (Lattice.equal j a || Lattice.equal j b);
          if a <> Lattice.Bot && b <> Lattice.Bot then
            Alcotest.(check int) "weakest wins"
              (min (Lattice.rank a) (Lattice.rank b))
              (Lattice.rank j);
          (* join is the least upper bound of leq *)
          Alcotest.(check bool) "a leq join" true (Lattice.leq a j);
          Alcotest.(check bool) "b leq join" true (Lattice.leq b j);
          List.iter
            (fun c ->
              Alcotest.check st "join associative"
                (Lattice.join a (Lattice.join b c))
                (Lattice.join (Lattice.join a b) c))
            all)
        all)
    all;
  (* ascending chain bound: ranks are pairwise distinct, so any strictly
     ascending chain is at most [height] long and loop relaxations
     terminate within height sweeps per object *)
  Alcotest.(check int) "height" 8 Lattice.height;
  Alcotest.(check int) "ranks pairwise distinct" (List.length all)
    (List.length
       (List.sort_uniq compare (List.map Lattice.rank all)))

let test_fact_laws () =
  let facts =
    List.concat_map
      (fun s ->
        [ { Lattice.st = s; published = false };
          { Lattice.st = s; published = true } ])
      Lattice.all
  in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        "fact join idempotent" true
        (Lattice.fact_equal (Lattice.join_fact a a) a);
      List.iter
        (fun b ->
          let j = Lattice.join_fact a b in
          Alcotest.(check bool)
            "fact join commutative" true
            (Lattice.fact_equal j (Lattice.join_fact b a));
          Alcotest.(check bool)
            "published or-joins" (a.Lattice.published || b.Lattice.published)
            j.Lattice.published)
        facts)
    facts

(* --- Engine internals: summary fixpoint on mutual recursion ------------------ *)

let mutual_src =
  {|
let rec walk t l link expected =
  match C.try_protect ~src:None ~node_header l.hp link expected with
  | C.Invalid -> None
  | C.Ok cur -> step t l cur

and step t l cur =
  match Tagged.ptr cur with
  | None -> None
  | Some n -> walk t l n.next (Link.get n.next)
|}

let converge_summaries src =
  let ast = Parse.implementation (Lexing.from_string src) in
  let _, summaries = Rules_flow.converge ~ext:(fun ~qual:_ _ -> None) ast in
  summaries

let find_summary summaries name =
  match
    Array.to_list summaries
    |> List.find_opt (fun s -> s.Summary.s_name = name)
  with
  | Some s -> s
  | None -> Alcotest.failf "no summary for %s" name

let test_mutual_fixpoint () =
  let summaries = converge_summaries mutual_src in
  let step = find_summary summaries "step" in
  let walk = find_summary summaries "walk" in
  (* step derefs its Raw-seeded pointer param [cur]; walk never derefs its
     pointer params [link]/[expected] raw (the deref it reaches sits behind
     try_protect validation or inside step, which it only enters with a
     validated argument). The handle param [l] is a plain record both halves
     project fields from, so it legitimately reads raw in both. *)
  Alcotest.(check int) "step arity" 3 step.Summary.s_arity;
  Alcotest.(check int) "walk arity" 4 walk.Summary.s_arity;
  Alcotest.(check bool) "step derefs cur raw" true
    step.Summary.s_derefs_raw.(2);
  Alcotest.(check bool) "walk never derefs link raw" false
    walk.Summary.s_derefs_raw.(2);
  Alcotest.(check bool) "walk never derefs expected raw" false
    walk.Summary.s_derefs_raw.(3);
  (* convergence is a fixpoint: a second independent run lands on the
     same summaries *)
  let again = converge_summaries mutual_src in
  Alcotest.(check int) "same count" (Array.length summaries)
    (Array.length again);
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        ("summary " ^ s.Summary.s_name ^ " deterministic")
        true
        (Summary.equal s again.(i)))
    summaries

let test_mutual_behavior () =
  (* the good twin is proven safe across the cycle; passing a raw pointer
     into the deref-ing half of the cycle is flagged at the call site *)
  check_silent "mutual traversal" ~path:ds_path mutual_src;
  check_fires "raw arg into recursive cycle" "F1" ~path:ds_path
    {|
let rec walk t l link expected =
  match C.try_protect ~src:None ~node_header l.hp link expected with
  | C.Invalid -> step t l (Link.get link)
  | C.Ok cur -> step t l cur

and step t l cur =
  match Tagged.ptr cur with
  | None -> None
  | Some n -> walk t l n.next (Link.get n.next)
|}

(* --- Engine internals: sidecar round trip ------------------------------------ *)

let test_sidecar_roundtrip () =
  let table = Summary.empty_table () in
  let _ = Engine.analyze_source ~mli_exists:true ~table ~path:ds_path mutual_src in
  let parsed = Summary.table_of_json (Summary.table_to_json table) in
  Alcotest.(check int) "entry count preserved"
    (Hashtbl.length table) (Hashtbl.length parsed);
  Alcotest.(check bool) "has entries" true (Hashtbl.length table > 0);
  Hashtbl.iter
    (fun key s ->
      match Hashtbl.find_opt parsed key with
      | None -> Alcotest.failf "lost %s in round trip" key
      | Some s' ->
          Alcotest.(check bool) (key ^ " summary survives round trip") true
            (Summary.equal s s'))
    table

(* --- Pinned output formats --------------------------------------------------- *)

let pin_path = "/virtual/lib/misc/pin.ml"
let pin_src = "let unreclaimed s = retired_total s - freed s"

let pin_finding () =
  match analyze ~path:pin_path pin_src with
  | [ f ], _ -> f
  | findings, _ ->
      Alcotest.failf "expected exactly one finding, got %d"
        (List.length findings)

let test_human_pinned () =
  Alcotest.(check string) "human line is byte-stable"
    "/virtual/lib/misc/pin.ml:1: [F6 counter-read-order] both operands of \
     this subtraction sweep monotonic counters: OCaml evaluates operands \
     right-to-left, so the decreasing side is swept first and a reader \
     preempted between sweeps overshoots by the backlog; bind the \
     increasing side with a `let` before subtracting"
    (Finding.to_human (pin_finding ()))

let test_json_pinned () =
  Alcotest.(check string) "json object is byte-stable"
    "{\"rule\":\"F6\",\"slug\":\"counter-read-order\",\
     \"file\":\"/virtual/lib/misc/pin.ml\",\"line\":1,\"message\":\"both \
     operands of this subtraction sweep monotonic counters: OCaml \
     evaluates operands right-to-left, so the decreasing side is swept \
     first and a reader preempted between sweeps overshoots by the \
     backlog; bind the increasing side with a `let` before subtracting\"}"
    (Finding.to_json (pin_finding ()))

let test_sarif_columns () =
  let sarif = Sarif.render [ pin_finding () ] in
  let has needle =
    let n = String.length needle and h = String.length sarif in
    let rec go i = i + n <= h && (String.sub sarif i n = needle || go (i + 1)) in
    go 0
  in
  (* the subtraction starts at column 21 of the pin line; human/JSON modes
     do not print columns (pinned above), SARIF must *)
  Alcotest.(check bool) "column-accurate region" true
    (has "\"region\":{\"startLine\":1,\"startColumn\":21}");
  Alcotest.(check bool) "ruleId present" true (has "\"ruleId\":\"F6\"");
  Alcotest.(check bool) "schema stamped" true (has "\"version\":\"2.1.0\"")

(* --- pragmas ----------------------------------------------------------------- *)

let test_pragma_suppression () =
  let text =
    {|
let lookup t key =
  let rec go l =
    match Tagged.ptr (Link.get l) with
    | None -> None
    (* smr-lint: allow F1 — fixture: reads run quiescently *)
    | Some n -> if n.key = key then Some n.value else go n.next
  in
  go t.head
|}
  in
  let findings, suppressed = analyze ~path:ds_path text in
  Alcotest.(check (list string)) "suppressed cleanly" [] (rule_ids findings);
  Alcotest.(check bool) "suppressions recorded" true (suppressed <> []);
  let f, reason = List.hd suppressed in
  Alcotest.(check string) "right rule" "F1" f.Finding.rule.id;
  Alcotest.(check string) "reason recorded" "fixture: reads run quiescently"
    reason

let test_pragma_slug_and_file_scope () =
  (* R5 is file-scope: a pragma anywhere in the file suppresses it, and the
     slug works as well as the id *)
  let findings, suppressed =
    analyze ~path:smr_path ~mli_exists:false
      "let x = 1\n\
       (* smr-lint: allow missing-mli — fixture: interface intentionally \
       open *)\n"
  in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids findings);
  Alcotest.(check int) "one suppression" 1 (List.length suppressed)

let test_pragma_wrong_line_does_not_suppress () =
  (* line-scope rules need the pragma on the finding line or the line above;
     a far-away pragma suppresses nothing and is itself flagged as unused *)
  let text =
    "(* smr-lint: allow F1 — fixture: too far from the finding *)\n\
     let a = 0\n\
     let b = 0\n\
     let lookup t =\n\
    \  match Tagged.ptr (Link.get t.head) with\n\
     | Some n -> Some n.value\n\
     | None -> None\n"
  in
  let findings, _ = analyze ~path:ds_path text in
  let ids = rule_ids findings in
  Alcotest.(check bool) "F1 still fires" true (List.mem "F1" ids);
  Alcotest.(check bool) "pragma flagged unused" true (List.mem "P1" ids)

let test_unused_pragma_flagged () =
  let findings, _ =
    analyze ~path:smr_path
      "(* smr-lint: allow R2 — fixture: nothing here frees anything *)\n\
       let x = 1"
  in
  Alcotest.(check (list string)) "unused pragma is a finding" [ "P1" ]
    (rule_ids findings)

let test_reasonless_pragma_rejected () =
  (* no reason, and a reason-separator with nothing after it: both malformed *)
  List.iter
    (fun text ->
      let findings, _ = analyze ~path:smr_path text in
      Alcotest.(check (list string)) "malformed pragma is a finding" [ "P2" ]
        (rule_ids findings))
    [
      "(* smr-lint: allow R2 *)\nlet x = 1";
      "(* smr-lint: allow R2 -- *)\nlet x = 1";
      "(* smr-lint: disallow R2 -- backwards *)\nlet x = 1";
    ]

let test_marker_mention_is_not_a_pragma () =
  (* the marker inside a string or mid-comment prose must not parse as a
     pragma (and so must not be flagged as unused either) *)
  let findings, suppressed =
    analyze ~path:smr_path
      "let doc = \"write smr-lint: allow R1 -- like this\"\nlet x = doc"
  in
  Alcotest.(check (list string)) "no findings" [] (rule_ids findings);
  Alcotest.(check int) "no suppressions" 0 (List.length suppressed)

let test_parse_error_reported () =
  let findings, _ = analyze ~path:smr_path "let x = (" in
  Alcotest.(check (list string)) "parse failure surfaces as E0" [ "E0" ]
    (rule_ids findings)

(* --- Seeded-bug corpus matrix ------------------------------------------------- *)

let corpus_root = "test/lint_corpus"

let rec corpus_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then corpus_files path
         else if Filename.check_suffix entry ".ml" then [ path ]
         else [])

let test_corpus_matrix () =
  let files = corpus_files corpus_root in
  let bads = ref 0 and goods = ref 0 in
  let covered = Hashtbl.create 16 in
  List.iter
    (fun path ->
      let base = Filename.remove_extension (Filename.basename path) in
      let rule =
        String.uppercase_ascii (List.hd (String.split_on_char '_' base))
      in
      let findings, _ = Engine.analyze_file path in
      let ids = rule_ids findings in
      if Filename.check_suffix base "_bad" then begin
        incr bads;
        Hashtbl.replace covered rule ();
        Alcotest.(check bool) (path ^ ": seeded bug caught") true (ids <> []);
        List.iter
          (fun id ->
            Alcotest.(check string) (path ^ ": only " ^ rule ^ " fires") rule
              id)
          ids
      end
      else begin
        incr goods;
        Alcotest.(check (list string)) (path ^ ": good twin clean") [] ids
      end)
    files;
  Alcotest.(check bool) "at least 11 seeded bugs" true (!bads >= 11);
  Alcotest.(check bool) "at least 10 good twins" true (!goods >= 10);
  List.iter
    (fun r ->
      Alcotest.(check bool) ("corpus covers " ^ r) true (Hashtbl.mem covered r))
    [ "F1"; "F2"; "F3"; "F4"; "F5"; "F6"; "F7"; "R2"; "R3"; "R4"; "R5" ]

(* --- end to end over the real tree ---------------------------------------- *)

let test_repo_is_clean () =
  (* the burn-in contract: the analyzer over lib/ reports nothing, and every
     suppression carries a reason *)
  let report = Engine.run [ "lib" ] in
  List.iter
    (fun (f : Finding.t) -> Printf.eprintf "%s\n" (Finding.to_human f))
    report.Engine.findings;
  Alcotest.(check int) "no findings on lib/" 0
    (List.length report.Engine.findings);
  Alcotest.(check bool) "analyzed a real number of files" true
    (report.Engine.files > 40);
  List.iter
    (fun ((f : Finding.t), reason) ->
      Alcotest.(check bool)
        (Printf.sprintf "suppression at %s:%d has a reason" f.Finding.file
           f.Finding.line)
        true
        (String.length reason > 10))
    report.Engine.suppressed

let () =
  (* dune runs tests from test/_build-adjacent cwd; hop to the repo root so
     Engine.run [ "lib" ] sees the sources *)
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent
  in
  (match find_root (Sys.getcwd ()) with
  | Some root -> Sys.chdir root
  | None -> ());
  Alcotest.run "analysis"
    [
      ( "v1 rules",
        [
          Alcotest.test_case "R1 raw-link-deref (--v1)" `Quick test_r1;
          Alcotest.test_case "R2 invalidate-before-free" `Quick test_r2;
          Alcotest.test_case "R3 shared-mutable-field" `Quick test_r3;
          Alcotest.test_case "R4 unguarded-trace-alloc" `Quick test_r4;
          Alcotest.test_case "R5 missing-mli" `Quick test_r5;
          Alcotest.test_case "parse error reported" `Quick
            test_parse_error_reported;
        ] );
      ( "flow rules",
        [
          Alcotest.test_case "F1 basics" `Quick test_f1_basics;
          Alcotest.test_case "F1 must-dominate join" `Quick test_f1_join;
          Alcotest.test_case "F1 CFG corners (while/try)" `Quick
            test_f1_cfg_corners;
          Alcotest.test_case "F1 interprocedural" `Quick
            test_f1_interprocedural;
          Alcotest.test_case "F2 protected-escape" `Quick test_f2;
          Alcotest.test_case "F3 retire discipline" `Quick test_f3;
          Alcotest.test_case "F4 collector-handoff" `Quick test_f4;
          Alcotest.test_case "F5 crit-hygiene" `Quick test_f5;
          Alcotest.test_case "F6 counter-read-order" `Quick test_f6;
          Alcotest.test_case "F7 quiescent-mixing" `Quick test_f7;
        ] );
      ( "engine internals",
        [
          Alcotest.test_case "lattice join/widen laws" `Quick
            test_lattice_laws;
          Alcotest.test_case "fact join laws" `Quick test_fact_laws;
          Alcotest.test_case "mutual recursion fixpoint" `Quick
            test_mutual_fixpoint;
          Alcotest.test_case "mutual recursion behavior" `Quick
            test_mutual_behavior;
          Alcotest.test_case "sidecar JSON round trip" `Quick
            test_sidecar_roundtrip;
        ] );
      ( "output pins",
        [
          Alcotest.test_case "human mode byte-stable" `Quick
            test_human_pinned;
          Alcotest.test_case "JSON mode byte-stable" `Quick test_json_pinned;
          Alcotest.test_case "SARIF carries columns" `Quick
            test_sarif_columns;
        ] );
      ( "pragmas",
        [
          Alcotest.test_case "suppresses with reason" `Quick
            test_pragma_suppression;
          Alcotest.test_case "slug + file scope" `Quick
            test_pragma_slug_and_file_scope;
          Alcotest.test_case "wrong line does not suppress" `Quick
            test_pragma_wrong_line_does_not_suppress;
          Alcotest.test_case "unused pragma flagged" `Quick
            test_unused_pragma_flagged;
          Alcotest.test_case "reasonless pragma rejected" `Quick
            test_reasonless_pragma_rejected;
          Alcotest.test_case "marker mention is not a pragma" `Quick
            test_marker_mention_is_not_a_pragma;
        ] );
      ( "corpus",
        [ Alcotest.test_case "seeded-bug matrix" `Quick test_corpus_matrix ] );
      ( "burn-in",
        [ Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean ] );
    ]
