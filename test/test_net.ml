(* lib/net units and integration: codec round-trips and fuzz (the decoder
   faces untrusted bytes: typed errors, never an exception, never an
   over-read), coordinated-omission backfill, and the networked server
   end-to-end over a unix socket — including a seeded stalled client that
   must not block other connections, and a client killed mid-request whose
   session the server must crash and reap without residue. *)

module Rng = Smr_core.Rng
module Frame = Net.Frame
module Codec = Net.Codec
module Histogram = Service.Histogram

(* --- codec: round-trip every frame type --------------------------------- *)

let all_frames =
  [
    { Frame.id = 0; payload = Frame.Request (Frame.Get 42) };
    { Frame.id = 1; payload = Frame.Request (Frame.Get (-7)) };
    { Frame.id = max_int; payload = Frame.Request (Frame.Put (17, -99)) };
    { Frame.id = 2; payload = Frame.Request (Frame.Delete 0) };
    { Frame.id = 3; payload = Frame.Request Frame.Ping };
    { Frame.id = 4; payload = Frame.Request Frame.Stats };
    { Frame.id = 5; payload = Frame.Response (Frame.Value 123456789) };
    { Frame.id = 6; payload = Frame.Response Frame.Not_found };
    { Frame.id = 7; payload = Frame.Response (Frame.Done true) };
    { Frame.id = 8; payload = Frame.Response (Frame.Done false) };
    { Frame.id = 9; payload = Frame.Response Frame.Retry };
    { Frame.id = 10; payload = Frame.Response (Frame.Error (2, "boom")) };
    { Frame.id = 11; payload = Frame.Response (Frame.Error (255, "")) };
    { Frame.id = 12; payload = Frame.Response Frame.Pong };
    { Frame.id = 13; payload = Frame.Response (Frame.Stats_payload "{\"x\":1}") };
    { Frame.id = 14; payload = Frame.Response (Frame.Stats_payload "") };
  ]

let check_roundtrip f =
  let b = Codec.encode_bytes f in
  match Codec.decode b ~off:0 ~avail:(Bytes.length b) with
  | Codec.Frame (g, consumed) ->
      Alcotest.(check int)
        (Frame.payload_name f.Frame.payload ^ " consumed")
        (Bytes.length b) consumed;
      if g <> f then
        Alcotest.failf "round-trip changed %s frame"
          (Frame.payload_name f.Frame.payload)
  | Codec.Need_more ->
      Alcotest.failf "complete %s frame decoded Need_more"
        (Frame.payload_name f.Frame.payload)
  | Codec.Corrupt c ->
      Alcotest.failf "%s frame decoded Corrupt: %s"
        (Frame.payload_name f.Frame.payload)
        (Codec.corrupt_to_string c)

let test_roundtrip () = List.iter check_roundtrip all_frames

(* --- codec: wire format pinned byte-for-byte ----------------------------- *)

(* These hex strings are the v1 wire encoding as shipped; a peer built from
   an older commit emits exactly these bytes, so changing any of them is a
   protocol break, not a refactor. *)
let hex_of_bytes b =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let bytes_of_hex s =
  Bytes.init
    (String.length s / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let pinned_frames =
  [
    ( { Frame.id = 0x2a; payload = Frame.Request (Frame.Get 7) },
      "000000120101000000000000002a0000000000000007" );
    ( { Frame.id = 0x10000000001; payload = Frame.Request (Frame.Put (3, 9)) },
      "0000001a0102000001000000000100000000000000030000000000000009" );
    ( { Frame.id = 5; payload = Frame.Response (Frame.Value 11) },
      "0000001201810000000000000005000000000000000b" );
    ( { Frame.id = 6; payload = Frame.Response (Frame.Done true) },
      "0000000b0183000000000000000601" );
  ]

let test_wire_format_pinned () =
  List.iter
    (fun (f, expect) ->
      let name = Frame.payload_name f.Frame.payload in
      Alcotest.(check string)
        (name ^ " encoding pinned")
        expect
        (hex_of_bytes (Codec.encode_bytes f));
      (* and bytes from an old peer still decode to the same frame *)
      let b = bytes_of_hex expect in
      match Codec.decode b ~off:0 ~avail:(Bytes.length b) with
      | Codec.Frame (g, _) ->
          if g <> f then Alcotest.failf "pinned %s bytes decode differently" name
      | Codec.Need_more | Codec.Corrupt _ ->
          Alcotest.failf "pinned %s bytes no longer decode" name)
    pinned_frames

(* --- session: wire marks fire as flushed bytes pass them ------------------ *)

let test_session_wire_marks () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  let sess = Net.Session.create a in
  Fun.protect
    ~finally:(fun () ->
      Net.Session.close sess;
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let fired = ref [] in
      Net.Session.set_on_wire sess (fun id -> fired := id :: !fired);
      let send id =
        Net.Session.send sess
          { Frame.id; payload = Frame.Response (Frame.Value id) };
        Net.Session.note_wire sess id
      in
      send 1;
      send 2;
      Alcotest.(check (list int)) "nothing fired before flush" [] !fired;
      (match Net.Session.flush sess with
      | `Done -> ()
      | `Blocked -> Alcotest.fail "socketpair buffer full on two frames"
      | `Closed -> Alcotest.fail "peer closed");
      Alcotest.(check (list int))
        "both marks fired in send order" [ 1; 2 ] (List.rev !fired);
      (* marks fire once: another flush with nothing queued stays silent *)
      ignore (Net.Session.flush sess);
      send 3;
      ignore (Net.Session.flush sess);
      Alcotest.(check (list int))
        "third mark fired once" [ 1; 2; 3 ] (List.rev !fired))

(* every strict prefix of a valid frame must decode Need_more, at any
   buffer offset — the incremental read path in Session depends on it *)
let test_prefixes_need_more () =
  List.iter
    (fun f ->
      let b = Codec.encode_bytes f in
      for avail = 0 to Bytes.length b - 1 do
        (* embed at a nonzero offset so off-by-ones can't hide at 0 *)
        let shifted = Bytes.make (avail + 3) '\xff' in
        Bytes.blit b 0 shifted 3 avail;
        match Codec.decode shifted ~off:3 ~avail with
        | Codec.Need_more -> ()
        | Codec.Frame _ ->
            Alcotest.failf "%s: %d/%d bytes decoded a whole frame"
              (Frame.payload_name f.Frame.payload)
              avail (Bytes.length b)
        | Codec.Corrupt c ->
            Alcotest.failf "%s: prefix of %d bytes Corrupt: %s"
              (Frame.payload_name f.Frame.payload)
              avail (Codec.corrupt_to_string c)
      done)
    all_frames

(* --- codec: seeded fuzz -------------------------------------------------- *)

let put_u32 b i v =
  Bytes.set b i (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (i + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (i + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (i + 3) (Char.chr (v land 0xff))

let test_fuzz_oversized () =
  let rng = Rng.create ~seed:0xfeedface in
  for _ = 1 to 200 do
    let b = Codec.encode_bytes (List.nth all_frames (Rng.below rng 16)) in
    put_u32 b 0 (Frame.max_frame - 3 + Rng.below rng 1_000_000);
    match Codec.decode b ~off:0 ~avail:(Bytes.length b) with
    | Codec.Corrupt (Codec.Oversized _) -> ()
    | _ -> Alcotest.fail "oversized declared length not rejected"
  done

let test_fuzz_garbage_headers () =
  (* random bytes with a plausible length prefix: must return a typed
     result, never raise, and never claim more bytes than were available *)
  let rng = Rng.create ~seed:0xdeadbee5 in
  let raised = ref 0 in
  for _ = 1 to 5_000 do
    let avail = Rng.below rng 64 in
    let b = Bytes.init avail (fun _ -> Char.chr (Rng.below rng 256)) in
    (* half the time, plant a self-consistent length so decoding gets past
       the prefix and into version/opcode/body validation *)
    if avail >= 4 && Rng.below rng 2 = 0 then
      put_u32 b 0 (Rng.below rng (avail + 8));
    match Codec.decode b ~off:0 ~avail with
    | Codec.Need_more | Codec.Corrupt _ -> ()
    | Codec.Frame (_, consumed) ->
        if consumed > avail then
          Alcotest.failf "decoder claimed %d bytes of %d" consumed avail
    | exception e ->
        incr raised;
        Alcotest.failf "decoder raised on garbage: %s" (Printexc.to_string e)
  done;
  Alcotest.(check int) "no exceptions" 0 !raised

let test_fuzz_truncated_valid () =
  let rng = Rng.create ~seed:0x72c0de in
  for _ = 1 to 1_000 do
    let f = List.nth all_frames (Rng.below rng (List.length all_frames)) in
    let b = Codec.encode_bytes f in
    let avail = Rng.below rng (Bytes.length b) in
    match Codec.decode b ~off:0 ~avail with
    | Codec.Need_more -> ()
    | Codec.Frame _ -> Alcotest.fail "truncated frame decoded whole"
    | Codec.Corrupt c ->
        Alcotest.failf "truncated valid frame Corrupt: %s"
          (Codec.corrupt_to_string c)
  done

let test_bad_version_and_opcode () =
  let b = Codec.encode_bytes (List.hd all_frames) in
  let v = Bytes.copy b in
  Bytes.set v 4 '\x09';
  (match Codec.decode v ~off:0 ~avail:(Bytes.length v) with
  | Codec.Corrupt (Codec.Bad_version 9) -> ()
  | _ -> Alcotest.fail "bad version not typed");
  let o = Bytes.copy b in
  Bytes.set o 5 '\x7f';
  (match Codec.decode o ~off:0 ~avail:(Bytes.length o) with
  | Codec.Corrupt (Codec.Bad_opcode 0x7f) -> ()
  | _ -> Alcotest.fail "bad opcode not typed");
  (* declared length too small for the fixed header *)
  let r = Bytes.copy b in
  put_u32 r 0 3;
  match Codec.decode r ~off:0 ~avail:(Bytes.length r) with
  | Codec.Corrupt (Codec.Runt 3) -> ()
  | _ -> Alcotest.fail "runt length not typed"

(* --- histogram: coordinated-omission backfill ---------------------------- *)

let test_record_corrected_backfill () =
  let interval = 1_000 in
  let uncorrected = Histogram.create () in
  let corrected = Histogram.create () in
  (* steady state: 2000 fast responses at the expected interval *)
  for _ = 1 to 2_000 do
    Histogram.record uncorrected 500;
    Histogram.record_corrected corrected ~interval 500
  done;
  (* one synthetic 100-interval stall: open-loop arrivals kept coming *)
  let stall = 100 * interval in
  Histogram.record uncorrected stall;
  Histogram.record_corrected corrected ~interval stall;
  let p99u = Histogram.percentile uncorrected 99.0 in
  let p99c = Histogram.percentile corrected 99.0 in
  if p99c < p99u then
    Alcotest.failf "corrected p99 %d < uncorrected %d" p99c p99u;
  (* the backfill added ~99 phantom samples spread over the stall, so the
     corrected p99 must actually move into the stall's range, not ride at
     the steady-state value like the uncorrected one *)
  if p99u >= interval then
    Alcotest.failf "uncorrected p99 %d unexpectedly saw the stall" p99u;
  if p99c < 10 * interval then
    Alcotest.failf "corrected p99 %d did not surface the stall" p99c;
  Alcotest.(check int)
    "backfill count" (2_001 + 99)
    (Histogram.count corrected)

(* The closed-form backfill must be indistinguishable from recording the
   arithmetic sequence one value at a time (the reference below), across
   bucket boundaries, awkward intervals, and the deep-backlog regime the
   closed form exists for. *)
let test_record_corrected_equivalence () =
  let naive h ~interval v =
    Histogram.record h v;
    if interval > 0 then begin
      let missing = ref (v - interval) in
      while !missing >= interval do
        Histogram.record h !missing;
        missing := !missing - interval
      done
    end
  in
  let rng = Smr_core.Rng.create ~seed:0xc0bacc5 in
  for _ = 1 to 200 do
    let interval = 1 + Smr_core.Rng.below rng 10_000 in
    let v = Smr_core.Rng.below rng 2_000_000 in
    let fast = Histogram.create () in
    let slow = Histogram.create () in
    Histogram.record_corrected fast ~interval v;
    naive slow ~interval v;
    if Histogram.count fast <> Histogram.count slow then
      Alcotest.failf "count mismatch at v=%d interval=%d: %d vs %d" v interval
        (Histogram.count fast) (Histogram.count slow);
    if abs_float (Histogram.mean fast -. Histogram.mean slow) > 1e-6 then
      Alcotest.failf "mean mismatch at v=%d interval=%d: %f vs %f" v interval
        (Histogram.mean fast) (Histogram.mean slow);
    List.iter
      (fun p ->
        let a = Histogram.percentile fast p in
        let b = Histogram.percentile slow p in
        if a <> b then
          Alcotest.failf "p%.1f mismatch at v=%d interval=%d: %d vs %d" p v
            interval a b)
      [ 50.0; 90.0; 99.0; 99.9 ]
  done;
  (* the regime that motivated the closed form: a 19 s completion against a
     ~4 us expected interval must be cheap and still total v/interval rows *)
  let deep = Histogram.create () in
  let interval = 4_166 in
  let v = 19_000_000_000 in
  Histogram.record_corrected deep ~interval v;
  Alcotest.(check int) "deep backfill count" (v / interval) (Histogram.count deep)

(* --- end-to-end over a unix socket --------------------------------------- *)

let sock_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "test-net-%d-%s.sock" (Unix.getpid ()) tag)

module E2e (S : Smr.Smr_intf.S) = struct
  module Srv = Net.Server.Make (S)

  let with_server ?(shards = 2) ?(reactors = 1) ?queue_bound tag f =
    let addr = Net.Addr.Unix_sock (sock_path (S.name ^ "-" ^ tag)) in
    let srv = Srv.start ~reactors ?queue_bound ~shards [ addr ] in
    Fun.protect ~finally:(fun () -> Srv.stop srv) (fun () -> f addr srv)

  let test_basic_ops () =
    with_server "basic" (fun addr srv ->
        let cfg =
          {
            (Net.Openloop.default_config addr) with
            conns = 2;
            rate = 4_000.0;
            duration = 0.4;
            keys = 512;
            seed = 0xe2e;
          }
        in
        Net.Openloop.prefill cfg ~count:256;
        let res = Net.Openloop.run cfg in
        if res.Net.Openloop.total_completed = 0 then
          Alcotest.fail "no requests completed";
        if res.Net.Openloop.achieved_rps <= 0.0 then
          Alcotest.fail "achieved_rps not positive";
        Alcotest.(check int) "nothing abandoned" 0
          res.Net.Openloop.total_abandoned;
        Alcotest.(check int) "no kills" 0 res.Net.Openloop.kills;
        let c = Srv.counters srv in
        if Atomic.get c.Net.Reactor.served < res.Net.Openloop.total_completed
        then Alcotest.fail "server served fewer than client completed")

  (* a seeded Stall on a client socket freezes that one connection; every
     other connection must keep completing requests while it is parked *)
  let test_stall_isolates () =
    with_server "stall" (fun addr _srv ->
        let cfg =
          {
            (Net.Openloop.default_config addr) with
            conns = 3;
            rate = 6_000.0;
            duration = 0.6;
            keys = 512;
            seed = 0x57a11 + Hashtbl.hash S.name;
          }
        in
        Net.Openloop.prefill cfg ~count:128;
        let plan =
          Fault.arm_seeded
            ~seed:(0xbad5eed + Hashtbl.hash S.name)
            ~points:[ Fault.Net_read; Fault.Net_write ]
            ~actions:[ Fault.Stall ] ()
        in
        Alcotest.(check string)
          "plan action" "stall"
          (Fault.action_name plan.Fault.action);
        (* watchdog: the victim parks inside the hook; release it before
           [run] joins the connection domains (PR 5 soak pattern) *)
        let watchdog =
          Domain.spawn (fun () ->
              Fault.await_stalled ();
              Unix.sleepf 0.25;
              Fault.release ())
        in
        let res =
          Fun.protect
            ~finally:(fun () ->
              Fault.release ();
              Domain.join watchdog;
              Fault.reset ())
            (fun () -> Net.Openloop.run cfg)
        in
        let stalled, fluent =
          List.partition
            (fun (c : Net.Openloop.conn_result) -> c.stalled_ns > 0)
            res.Net.Openloop.per_conn
        in
        Alcotest.(check int) "exactly one stalled conn" 1 (List.length stalled);
        List.iter
          (fun (c : Net.Openloop.conn_result) ->
            if c.completed = 0 then
              Alcotest.failf "%s: un-stalled conn made no progress" S.name)
          fluent;
        let stalled_c = List.hd stalled in
        if stalled_c.Net.Openloop.stalled_ns < 100_000_000 then
          Alcotest.failf "%s: stall too short (%dns) to prove anything" S.name
            stalled_c.Net.Openloop.stalled_ns)

  (* kill a raw client mid-request: the server must crash the session, a
     reap must recover it, and the garbage backlog must stay bounded *)
  let test_kill_mid_request () =
    with_server "kill" (fun addr srv ->
        let fd = Net.Addr.connect addr in
        (* one whole PUT, then half of another — the frame boundary is
           mid-flight when the connection dies *)
        let whole =
          Codec.encode_bytes
            { Frame.id = 1; payload = Frame.Request (Frame.Put (1, 1)) }
        in
        let rec write_all off =
          if off < Bytes.length whole then
            write_all (off + Unix.write fd whole off (Bytes.length whole - off))
        in
        write_all 0;
        let half = Bytes.sub whole 0 (Bytes.length whole / 2) in
        ignore (Unix.write fd half 0 (Bytes.length half));
        Unix.close fd;
        (* reactor notices EOF within a select tick; its periodic tick then
           reaps the crashed session *)
        let c = Srv.counters srv in
        let deadline = Unix.gettimeofday () +. 5.0 in
        while
          Atomic.get c.Net.Reactor.crashed = 0
          && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.02
        done;
        Alcotest.(check int) "one crashed conn" 1
          (Atomic.get c.Net.Reactor.crashed);
        Unix.sleepf 0.25;
        ignore (Srv.reap srv);
        let snap = Srv.snapshot srv ~elapsed:1.0 in
        Alcotest.(check int)
          "crashed session visible in snapshot" 1
          snap.Service.Service_stats.dead_sessions;
        let residue = Srv.residue srv in
        if residue > 64 then
          Alcotest.failf "%s: residue %d > 64 after kill + reap" S.name residue)

  (* the bounded request queue must answer Retry, not buffer unboundedly:
     fire a burst far beyond the queue bound without reading responses *)
  let test_backpressure_retry () =
    with_server ~queue_bound:8 "retry" (fun addr srv ->
        let fd = Net.Addr.connect addr in
        let buf = Buffer.create 4096 in
        for i = 1 to 512 do
          Codec.encode buf { Frame.id = i; payload = Frame.Request (Frame.Get i) }
        done;
        let b = Buffer.to_bytes buf in
        let rec write_all off =
          if off < Bytes.length b then
            write_all (off + Unix.write fd b off (Bytes.length b - off))
        in
        write_all 0;
        (* drain responses until all 512 ids answered (Value/Not_found or
           Retry), proving the server neither dropped nor deadlocked *)
        let sess = Net.Session.create fd in
        Unix.set_nonblock fd;
        let answered = ref 0 in
        let retries = ref 0 in
        let deadline = Unix.gettimeofday () +. 5.0 in
        while !answered < 512 && Unix.gettimeofday () < deadline do
          (match Unix.select [ fd ] [] [] 0.05 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | _ -> ());
          match Net.Session.fill sess with
          | Net.Session.Eof -> Alcotest.fail "server closed under burst"
          | Net.Session.Blocked | Net.Session.Data ->
              let rec drain () =
                match Net.Session.next_frame sess with
                | `Need_more -> ()
                | `Corrupt c ->
                    Alcotest.failf "corrupt response: %s"
                      (Codec.corrupt_to_string c)
                | `Frame f ->
                    (match f.Frame.payload with
                    | Frame.Response Frame.Retry ->
                        incr retries;
                        incr answered
                    | Frame.Response _ -> incr answered
                    | Frame.Request _ -> Alcotest.fail "request from server");
                    drain ()
              in
              drain ()
        done;
        Unix.close fd;
        Alcotest.(check int) "every request answered" 512 !answered;
        if !retries = 0 then
          Alcotest.fail "burst past an 8-deep queue produced no Retry";
        let c = Srv.counters srv in
        Alcotest.(check int)
          "retry counter matches" !retries
          (Atomic.get c.Net.Reactor.retries))

  (* a syntactically corrupt frame gets a typed Error response and the
     connection is torn down as a crash *)
  let test_corrupt_frame_teardown () =
    with_server "corrupt" (fun addr srv ->
        let fd = Net.Addr.connect addr in
        let bad = Bytes.make 14 '\x00' in
        put_u32 bad 0 10;
        Bytes.set bad 4 '\x42' (* wrong version *);
        ignore (Unix.write fd bad 0 14);
        let resp = Bytes.create 4096 in
        let n = Unix.read fd resp 0 4096 in
        (match Codec.decode resp ~off:0 ~avail:n with
        | Codec.Frame ({ payload = Frame.Response (Frame.Error (code, _)); _ }, _)
          ->
            Alcotest.(check int) "err_bad_frame" Frame.err_bad_frame code
        | _ -> Alcotest.fail "expected an Error frame");
        (* server closes after the error; read to EOF *)
        let rec to_eof () = if Unix.read fd resp 0 4096 > 0 then to_eof () in
        to_eof ();
        Unix.close fd;
        let c = Srv.counters srv in
        Alcotest.(check int) "torn down as crash" 1
          (Atomic.get c.Net.Reactor.crashed))

  let cases =
    [
      Alcotest.test_case (S.name ^ " basic ops over unix socket") `Quick
        test_basic_ops;
      Alcotest.test_case (S.name ^ " stalled client isolates") `Quick
        test_stall_isolates;
      Alcotest.test_case (S.name ^ " kill mid-request reaps clean") `Quick
        test_kill_mid_request;
      Alcotest.test_case (S.name ^ " bounded queue answers Retry") `Quick
        test_backpressure_retry;
      Alcotest.test_case (S.name ^ " corrupt frame torn down") `Quick
        test_corrupt_frame_teardown;
    ]
end

module E2e_hp = E2e (Hp)
module E2e_hpp = E2e (Hp_plus)
module E2e_ebr = E2e (Ebr)
module E2e_pebr = E2e (Pebr)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "net"
    [
      ( "codec",
        [
          case "round-trip every frame type" test_roundtrip;
          case "every prefix decodes Need_more" test_prefixes_need_more;
          case "fuzz: oversized lengths rejected" test_fuzz_oversized;
          case "fuzz: garbage headers never raise" test_fuzz_garbage_headers;
          case "fuzz: truncated valid frames wait" test_fuzz_truncated_valid;
          case "bad version/opcode/runt typed" test_bad_version_and_opcode;
          case "wire format pinned byte-for-byte" test_wire_format_pinned;
        ] );
      ( "session",
        [ case "wire marks fire at flushed-byte offsets" test_session_wire_marks ]
      );
      ( "histogram",
        [
          case "record_corrected surfaces a stall" test_record_corrected_backfill;
          case "closed-form backfill matches one-by-one"
            test_record_corrected_equivalence;
        ]
      );
      ("e2e-hp", E2e_hp.cases);
      ("e2e-hp++", E2e_hpp.cases);
      ("e2e-ebr", E2e_ebr.cases);
      ("e2e-pebr", E2e_pebr.cases);
    ]
