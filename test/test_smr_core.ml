(* Unit and property tests for the smr_core substrate. *)

module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Rng = Smr_core.Rng
module Domain_pool = Smr_core.Domain_pool

let test_mem_lifecycle () =
  let stats = Stats.create () in
  let h = Mem.make stats in
  Alcotest.(check bool) "live" true (Mem.is_live h);
  Mem.check_access h;
  Mem.retire_mark h;
  Alcotest.(check bool) "retired" true (Mem.is_retired h);
  Mem.check_access h;
  (* retired but protected blocks are accessible *)
  Mem.free_mark h;
  Alcotest.(check bool) "freed" true (Mem.is_freed h);
  Alcotest.check_raises "UAF detected" (Mem.Use_after_free (Mem.uid h))
    (fun () -> Mem.check_access h)

let test_mem_double_retire () =
  let stats = Stats.create () in
  let h = Mem.make stats in
  Mem.retire_mark h;
  Alcotest.check_raises "double retire" (Mem.Double_retire (Mem.uid h))
    (fun () -> Mem.retire_mark h)

let test_mem_invalid_free () =
  let stats = Stats.create () in
  let h = Mem.make stats in
  Alcotest.check_raises "free live" (Mem.Invalid_free (Mem.uid h)) (fun () ->
      Mem.free_mark h);
  Mem.retire_mark h;
  Mem.free_mark h;
  Alcotest.check_raises "double free" (Mem.Invalid_free (Mem.uid h))
    (fun () -> Mem.free_mark h)

let test_mem_cascade_free () =
  let stats = Stats.create () in
  let h = Mem.make stats in
  Mem.free_mark_cascade h;
  (* live -> freed allowed *)
  Alcotest.(check bool) "freed" true (Mem.is_freed h);
  Alcotest.check_raises "double cascade free" (Mem.Invalid_free (Mem.uid h))
    (fun () -> Mem.free_mark_cascade h)

let test_mem_phantom_sentinel () =
  (* the phantom bag filler must not collide with the -1 "no node" Step
     sentinel, and must never survive a retire/free path *)
  Alcotest.(check int) "phantom uid" (-2) (Mem.uid Mem.phantom);
  Alcotest.(check int) "pinned to phantom_uid" Mem.phantom_uid
    (Mem.uid Mem.phantom);
  Alcotest.(check bool) "distinct from the no-node sentinel" true
    (Mem.phantom_uid <> -1);
  let rejects name f =
    match f Mem.phantom with
    | () -> Alcotest.failf "%s accepted the phantom header" name
    | exception Invalid_argument _ -> ()
  in
  rejects "retire_mark" Mem.retire_mark;
  rejects "free_mark" Mem.free_mark;
  rejects "free_mark_cascade" Mem.free_mark_cascade;
  Alcotest.(check bool) "still live afterwards" true (Mem.is_live Mem.phantom)

let test_mem_checking_toggle () =
  let stats = Stats.create () in
  let h = Mem.make stats in
  Mem.retire_mark h;
  Mem.free_mark h;
  Mem.set_checking false;
  Mem.check_access h;
  (* no raise while disabled *)
  Mem.set_checking true;
  Alcotest.check_raises "re-enabled" (Mem.Use_after_free (Mem.uid h))
    (fun () -> Mem.check_access h)

let test_mem_uid_unique () =
  let stats = Stats.create () in
  let hs = List.init 100 (fun _ -> Mem.make stats) in
  let uids = List.sort_uniq compare (List.map Mem.uid hs) in
  Alcotest.(check int) "unique uids" 100 (List.length uids)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.on_alloc s;
  Stats.on_alloc s;
  Stats.on_alloc s;
  Stats.on_retire s;
  Stats.on_retire s;
  (* Peaks fold in at read time (and at the schemes' reclaim entries), not
     per event: observe the backlog at its maximum before draining it. *)
  Alcotest.(check int) "peak unreclaimed" 2 (Stats.peak_unreclaimed s);
  Stats.on_free s;
  Alcotest.(check int) "allocated" 3 (Stats.allocated s);
  Alcotest.(check int) "live" 2 (Stats.live s);
  Alcotest.(check int) "unreclaimed" 1 (Stats.unreclaimed s);
  Alcotest.(check int) "peak survives drain" 2 (Stats.peak_unreclaimed s);
  Alcotest.(check int) "retired total" 2 (Stats.retired_total s);
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.allocated s);
  Alcotest.(check int) "reset clears peak" 0 (Stats.peak_unreclaimed s)

let test_stats_discard () =
  let s = Stats.create () in
  Stats.on_alloc s;
  Stats.on_discard s;
  Alcotest.(check int) "live after discard" 0 (Stats.live s);
  Alcotest.(check int) "unreclaimed untouched" 0 (Stats.unreclaimed s)

let test_stats_concurrent_peak () =
  let s = Stats.create () in
  ignore
    (Domain_pool.run ~n:4 (fun _ ->
         for _ = 1 to 1000 do
           Stats.on_retire s
         done));
  Alcotest.(check int) "backlog summed across stripes" 4000
    (Stats.unreclaimed s);
  ignore
    (Domain_pool.run ~n:4 (fun _ ->
         for _ = 1 to 1000 do
           Stats.on_free s
         done));
  Alcotest.(check int) "unreclaimed drains" 0 (Stats.unreclaimed s);
  Alcotest.(check int) "peak survives drain" 4000 (Stats.peak_unreclaimed s);
  Alcotest.(check int) "retired total" 4000 (Stats.retired_total s)

(* The striped-counter contract: concurrent events from many domains sum
   exactly, reset clears every stripe, and peaks are monotone upper bounds
   of every value a reading ever reported. *)
let test_stats_striped_sum () =
  let s = Stats.create () in
  let n = 4 and per = 5000 in
  ignore
    (Domain_pool.run ~n (fun _ ->
         for i = 1 to per do
           Stats.on_alloc s;
           Stats.on_retire s;
           if i mod 2 = 0 then Stats.on_free s;
           if i mod 3 = 0 then Stats.on_heavy_fence s;
           if i mod 7 = 0 then Stats.on_protection_failure s
         done));
  Alcotest.(check int) "allocated sums exactly" (n * per) (Stats.allocated s);
  Alcotest.(check int) "retired sums exactly" (n * per) (Stats.retired_total s);
  Alcotest.(check int) "freed sums exactly" (n * per / 2) (Stats.freed s);
  Alcotest.(check int) "unreclaimed sums exactly" (n * per / 2)
    (Stats.unreclaimed s);
  Alcotest.(check int) "heavy fences sum exactly"
    (n * (per / 3))
    (Stats.heavy_fences s);
  Alcotest.(check int) "protection failures sum exactly"
    (n * (per / 7))
    (Stats.protection_failures s);
  Stats.reset s;
  Alcotest.(check int) "reset allocated" 0 (Stats.allocated s);
  Alcotest.(check int) "reset unreclaimed" 0 (Stats.unreclaimed s);
  Alcotest.(check int) "reset peak unreclaimed" 0 (Stats.peak_unreclaimed s);
  Alcotest.(check int) "reset peak live" 0 (Stats.peak_live s)

let test_stats_peak_upper_bound () =
  let s = Stats.create () in
  let maxes =
    Domain_pool.run ~n:4 (fun _ ->
        let m = ref 0 in
        for i = 1 to 2000 do
          Stats.on_retire s;
          if i mod 16 = 0 then m := max !m (Stats.unreclaimed s);
          if i mod 2 = 0 then Stats.on_free s
        done;
        !m)
  in
  let observed = Array.fold_left max 0 maxes in
  Alcotest.(check bool) "peak bounds every observed reading" true
    (Stats.peak_unreclaimed s >= observed);
  let p1 = Stats.peak_unreclaimed s in
  ignore (Stats.unreclaimed s);
  let p2 = Stats.peak_unreclaimed s in
  Alcotest.(check bool) "peak is monotone" true (p2 >= p1);
  Alcotest.(check bool) "peak bounds the final backlog" true
    (p2 >= Stats.unreclaimed s)

let test_tagged_basics () =
  let t = Tagged.make ~tag:0 (Some 42) in
  Alcotest.(check bool) "not deleted" false (Tagged.is_deleted t);
  let d = Tagged.set_bits t Tagged.deleted_bit in
  Alcotest.(check bool) "deleted" true (Tagged.is_deleted d);
  Alcotest.(check bool) "not invalid" false (Tagged.is_invalid d);
  let i = Tagged.set_bits d Tagged.invalid_bit in
  Alcotest.(check bool) "deleted+invalid" true
    (Tagged.is_deleted i && Tagged.is_invalid i);
  Alcotest.(check int) "untag" 0 (Tagged.tag (Tagged.untagged i));
  Alcotest.(check bool) "null" true (Tagged.is_null Tagged.null);
  Alcotest.(check int) "get_exn" 42 (Tagged.get_exn t)

let test_tagged_same_ptr () =
  let a = ref 1 and b = ref 1 in
  let ta = Tagged.make (Some a) in
  let ta' = Tagged.make ~tag:3 (Some a) in
  let tb = Tagged.make (Some b) in
  Alcotest.(check bool) "same target, tags differ" true
    (Tagged.same_ptr ta ta');
  Alcotest.(check bool) "equal but distinct refs" false (Tagged.same_ptr ta tb);
  Alcotest.(check bool) "null = null" true
    (Tagged.same_ptr Tagged.null Tagged.null);
  Alcotest.(check bool) "null vs some" false (Tagged.same_ptr Tagged.null ta)

let test_link_cas_physical () =
  let n1 = ref 1 and n2 = ref 2 in
  let t1 = Tagged.make (Some n1) in
  let link = Link.make t1 in
  let t1_lookalike = Tagged.make (Some n1) in
  Alcotest.(check bool) "CAS with a re-made record fails" false
    (Link.cas link t1_lookalike (Tagged.make (Some n2)));
  Alcotest.(check bool) "CAS with the read record succeeds" true
    (Link.cas link t1 (Tagged.make (Some n2)))

let test_link_mark_invalid () =
  let n = ref 0 in
  let link = Link.make (Tagged.make ~tag:Tagged.deleted_bit (Some n)) in
  Link.mark_invalid link;
  let v = Link.get link in
  Alcotest.(check bool) "keeps deleted bit" true (Tagged.is_deleted v);
  Alcotest.(check bool) "gains invalid bit" true (Tagged.is_invalid v);
  Alcotest.(check bool) "keeps pointer" true
    (match Tagged.ptr v with Some p -> p == n | None -> false)

let test_backoff_caps () =
  let b = Smr_core.Backoff.create ~min_spins:2 ~max_spins:8 () in
  (* growth doubles and saturates at the cap without raising *)
  for _ = 1 to 10 do
    Smr_core.Backoff.once b
  done;
  Smr_core.Backoff.reset b;
  Smr_core.Backoff.once b

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_below_range () =
  let r = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Rng.below r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_barrier_releases_all () =
  let results =
    Domain_pool.run ~n:4 (fun i ->
        (* all four must arrive before any proceeds *)
        i * i)
  in
  Alcotest.(check (array int)) "results in order" [| 0; 1; 4; 9 |] results

let test_pool_propagates_exception () =
  match Domain_pool.run ~n:2 (fun i -> if i = 1 then failwith "boom" else 0) with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected exception"

let test_run_timed_stops () =
  let counts =
    Domain_pool.run_timed ~n:2 ~duration:0.1 (fun _ ~stop ->
        let n = ref 0 in
        while not (stop ()) do
          incr n
        done;
        !n)
  in
  Array.iter (fun c -> Alcotest.(check bool) "did work" true (c > 0)) counts

(* qcheck: the Mem state machine never admits an illegal transition. *)
let prop_mem_state_machine =
  QCheck2.Test.make ~name:"mem state machine rejects illegal transitions"
    ~count:200
    QCheck2.Gen.(list (int_range 0 2))
    (fun script ->
      let stats = Stats.create () in
      let h = Mem.make stats in
      let state = ref `Live in
      List.for_all
        (fun op ->
          match op with
          | 0 -> (
              match (!state, Mem.retire_mark h) with
              | `Live, () ->
                  state := `Retired;
                  true
              | _ -> false
              | exception Mem.Double_retire _ -> !state <> `Live)
          | 1 -> (
              match (!state, Mem.free_mark h) with
              | `Retired, () ->
                  state := `Freed;
                  true
              | _ -> false
              | exception Mem.Invalid_free _ -> !state <> `Retired)
          | _ -> (
              match Mem.check_access h with
              | () -> !state <> `Freed
              | exception Mem.Use_after_free _ -> !state = `Freed))
        script)

let prop_tagged_bits =
  QCheck2.Test.make ~name:"tag bit algebra" ~count:500
    QCheck2.Gen.(pair (int_range 0 7) bool)
    (fun (tag, with_ptr) ->
      let ptr = if with_ptr then Some (ref 0) else None in
      let t = Tagged.make ~tag ptr in
      Tagged.tag (Tagged.untagged t) = 0
      && Tagged.is_deleted (Tagged.set_bits t Tagged.deleted_bit)
      && Tagged.is_invalid (Tagged.set_bits t Tagged.invalid_bit)
      && Tagged.same_ptr t (Tagged.untagged t))

let () =
  Alcotest.run "smr_core"
    [
      ( "mem",
        [
          Alcotest.test_case "lifecycle" `Quick test_mem_lifecycle;
          Alcotest.test_case "double retire" `Quick test_mem_double_retire;
          Alcotest.test_case "invalid free" `Quick test_mem_invalid_free;
          Alcotest.test_case "cascade free" `Quick test_mem_cascade_free;
          Alcotest.test_case "phantom sentinel" `Quick
            test_mem_phantom_sentinel;
          Alcotest.test_case "checking toggle" `Quick test_mem_checking_toggle;
          Alcotest.test_case "uid uniqueness" `Quick test_mem_uid_unique;
          QCheck_alcotest.to_alcotest prop_mem_state_machine;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "discard" `Quick test_stats_discard;
          Alcotest.test_case "concurrent peak" `Quick test_stats_concurrent_peak;
          Alcotest.test_case "striped sums" `Quick test_stats_striped_sum;
          Alcotest.test_case "peak upper bound" `Quick
            test_stats_peak_upper_bound;
        ] );
      ( "tagged",
        [
          Alcotest.test_case "basics" `Quick test_tagged_basics;
          Alcotest.test_case "same_ptr" `Quick test_tagged_same_ptr;
          QCheck_alcotest.to_alcotest prop_tagged_bits;
        ] );
      ( "link",
        [
          Alcotest.test_case "physical CAS" `Quick test_link_cas_physical;
          Alcotest.test_case "mark invalid" `Quick test_link_mark_invalid;
        ] );
      ( "backoff",
        [ Alcotest.test_case "grows and caps" `Quick test_backoff_caps ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "below range" `Quick test_rng_below_range;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "barrier" `Quick test_barrier_releases_all;
          Alcotest.test_case "exceptions" `Quick test_pool_propagates_exception;
          Alcotest.test_case "run_timed" `Quick test_run_timed_stops;
        ] );
    ]
