(* Tests for the asynchronous reclamation pipeline: the bounded MPSC
   handoff ring and collector domain (lib/smr/collector.ml), the adaptive
   threshold policy, retire-bag growth/transfer/salvage, and the
   scheme-level contracts — clean shutdown drains everything, a stalled or
   dead collector degrades to inline reclamation with bounded garbage and
   no lost or double-freed blocks. The fault plan is global, so every test
   touching it resets on entry. *)

module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Pool = Smr_core.Domain_pool
module Collector = Smr.Collector
module Retire_bag = Smr.Retire_bag
module Trace = Obs.Trace
module Check = Obs.Check

let base = Smr.Smr_intf.default_config

(* --- adaptive threshold policy (pure) ----------------------------------- *)

let test_adapt_threshold () =
  let adapt = Collector.adapt_threshold in
  Alcotest.(check int) "halve under pressure" 64
    (adapt ~cur:128 ~lo:16 ~hi:1024 ~pending:300);
  Alcotest.(check int) "double when garbage is low" 256
    (adapt ~cur:128 ~lo:16 ~hi:1024 ~pending:10);
  Alcotest.(check int) "hold inside the band" 128
    (adapt ~cur:128 ~lo:16 ~hi:1024 ~pending:128);
  Alcotest.(check int) "halving clamps at lo" 16
    (adapt ~cur:20 ~lo:16 ~hi:1024 ~pending:1000);
  Alcotest.(check int) "doubling clamps at hi" 1024
    (adapt ~cur:1024 ~lo:16 ~hi:1024 ~pending:0);
  (* degenerate bounds must never drive the threshold to zero (which would
     retire-collect on every single retire, or worse, never) *)
  Alcotest.(check int) "lo floor is 1" 1
    (adapt ~cur:0 ~lo:0 ~hi:0 ~pending:100)

(* --- retire bags: growth, transfer, in-place salvage --------------------- *)

(* Pin: bags grow past their initial capacity. The adaptive threshold can
   exceed the 2*reclaim_threshold a handle's bag was sized for, and a
   fallback path can keep pushing into a full bag; neither may drop
   entries. *)
let test_bag_growth () =
  let b = Retire_bag.create ~capacity:4 (-1) in
  for i = 0 to 99 do
    Retire_bag.push b i
  done;
  Alcotest.(check int) "grew past initial capacity" 100 (Retire_bag.length b);
  Alcotest.(check int) "order preserved" 57 (Retire_bag.get b 57);
  Retire_bag.clear b;
  Alcotest.(check bool) "clear empties" true (Retire_bag.is_empty b)

let test_bag_transfer () =
  let src = Retire_bag.create ~capacity:2 (-1) in
  let dst = Retire_bag.create ~capacity:2 (-1) in
  List.iter (Retire_bag.push dst) [ 10; 11 ];
  List.iter (Retire_bag.push src) [ 1; 2; 3; 4; 5 ];
  Retire_bag.transfer ~src ~dst;
  Alcotest.(check bool) "src emptied" true (Retire_bag.is_empty src);
  Alcotest.(check (list int)) "dst appended in order" [ 10; 11; 1; 2; 3; 4; 5 ]
    (Retire_bag.to_list dst);
  (* transferring an empty bag is a no-op *)
  Retire_bag.transfer ~src ~dst;
  Alcotest.(check int) "no-op on empty src" 7 (Retire_bag.length dst)

let test_bag_salvage_in_place () =
  let stats = Stats.create () in
  let a = Mem.make stats and b = Mem.make stats and c = Mem.make stats in
  Mem.retire_mark a;
  Mem.retire_mark b;
  Mem.retire_mark c;
  Mem.free_mark c;
  let bag = Retire_bag.create Mem.phantom in
  (* torn shape: compacted survivor, stale duplicate of it, a freed block,
     and dummy filler exposed by a mid-filter death *)
  List.iter (Retire_bag.push bag) [ a; b; a; c; Mem.phantom ];
  Retire_bag.salvage
    ~uid:Mem.uid
    ~skip:(fun h -> Mem.uid h = Mem.phantom_uid || Mem.is_freed h)
    bag;
  Alcotest.(check (list int)) "dedup, drop freed and phantom, keep order"
    [ Mem.uid a; Mem.uid b ]
    (List.map Mem.uid (Retire_bag.to_list bag))

(* --- the handoff ring and collector domain ------------------------------- *)

let test_ring_basic () =
  Fault.reset ();
  let drained = Atomic.make 0 in
  let mk () = Retire_bag.create ~capacity:4 0 in
  let c =
    Collector.spawn ~capacity:4
      ~drain:(fun bags n ->
        for i = 0 to n - 1 do
          ignore (Atomic.fetch_and_add drained (Retire_bag.length bags.(i)));
          Retire_bag.clear bags.(i)
        done;
        0)
      ~dummy:(mk ()) ()
  in
  Alcotest.(check bool) "spawned running" true (Collector.running c);
  Alcotest.(check int) "capacity as requested" 4 (Collector.capacity c);
  (* one-cell rings cannot tell full from writable; pin the clamp *)
  let tiny =
    Collector.spawn ~capacity:1 ~drain:(fun _ _ -> 0) ~dummy:(mk ()) ()
  in
  Alcotest.(check int) "capacity 1 clamped to 2" 2 (Collector.capacity tiny);
  Collector.shutdown tiny ~recover:ignore;
  for i = 1 to 10 do
    let b = match Collector.take_bag c with Some b -> b | None -> mk () in
    Retire_bag.push b i;
    (* the consumer is live, so a full ring is transient: spin until the
       offer lands *)
    while not (Collector.offer c b) do
      Domain.cpu_relax ()
    done
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get drained < 10 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "every element drained" 10 (Atomic.get drained);
  Collector.shutdown c ~recover:(fun _ ->
      Alcotest.fail "clean shutdown left bags queued");
  Alcotest.(check bool) "stopped, not dead" false (Collector.dead c);
  let k = Collector.counters c in
  Alcotest.(check int) "handoffs counted" 10 k.Collector.handoffs;
  Alcotest.(check bool) "drains counted" true (k.Collector.drains > 0);
  Alcotest.(check int) "bags accounted" 10 k.Collector.drained_bags;
  (* idempotent *)
  Collector.shutdown c ~recover:(fun _ -> Alcotest.fail "second shutdown")

(* A stalled collector: the ring fills, [offer] rejects without blocking,
   and nothing handed over is lost — on release/shutdown every queued bag
   is either drained or recovered. *)
let test_ring_full_rejects_and_recovers () =
  Fault.reset ();
  let mk () = Retire_bag.create ~capacity:2 0 in
  let drained = ref 0 and recovered = ref 0 in
  let c =
    Collector.spawn ~capacity:2
      ~drain:(fun bags n ->
        for i = 0 to n - 1 do
          drained := !drained + Retire_bag.length bags.(i);
          Retire_bag.clear bags.(i)
        done;
        0)
      ~dummy:(mk ()) ()
  in
  Fault.arm ~point:Fault.Collector ~action:Fault.Stall ();
  Fault.await_stalled ();
  let offer_one v =
    let b = mk () in
    Retire_bag.push b v;
    Collector.offer c b
  in
  Alcotest.(check bool) "first offer fits" true (offer_one 1);
  Alcotest.(check bool) "second offer fits" true (offer_one 2);
  Alcotest.(check bool) "third rejected: ring full" false (offer_one 3);
  Alcotest.(check int) "occupancy at capacity" 2 (Collector.occupancy c);
  let k = Collector.counters c in
  Alcotest.(check int) "two handoffs" 2 k.Collector.handoffs;
  Alcotest.(check int) "one fallback" 1 k.Collector.fallbacks;
  Fault.release ();
  Collector.shutdown c ~recover:(fun b ->
      recovered := !recovered + Retire_bag.length b);
  Alcotest.(check int) "nothing lost" 2 (!drained + !recovered);
  Fault.reset ()

(* --- HP: clean shutdown drains everything, trace-checker clean ----------- *)

let test_hp_async_clean_shutdown () =
  Fault.reset ();
  let cfg =
    { base with reclaim_threshold = 16; async_reclaim = true;
      handoff_capacity = 4 }
  in
  Trace.enable ~capacity:(1 lsl 16) ();
  let t = Hp.create ~config:cfg () in
  ignore
    (Pool.run ~n:3 (fun _ ->
         let h = Hp.register t in
         for _ = 1 to 500 do
           Hp.retire h (Mem.make (Hp.stats t))
         done;
         Hp.flush h;
         Hp.unregister h));
  Hp.shutdown t;
  (* the orphanage holds whatever shutdown donated; one surviving inline
     pass adopts and frees it — no hazards remain *)
  let survivor = Hp.register t in
  Hp.flush survivor;
  Alcotest.(check int) "zero residue after shutdown + survivor flush" 0
    (Stats.unreclaimed (Hp.stats t));
  Alcotest.(check int) "freed exactly what was allocated"
    (Stats.allocated (Hp.stats t))
    (Stats.freed (Hp.stats t));
  Hp.unregister survivor;
  Trace.disable ();
  let snap = Trace.snapshot () in
  Trace.reset ();
  let count k =
    Array.fold_left
      (fun acc (e : Trace.event) -> if e.Trace.kind = k then acc + 1 else acc)
      0 snap.Trace.events
  in
  Alcotest.(check bool) "handoffs traced" true (count Trace.Handoff > 0);
  Alcotest.(check bool) "drain cycles traced" true (count Trace.Drain > 0);
  (match Check.run_snapshot snap with
  | Ok _ -> ()
  | Error (v :: rest) ->
      Alcotest.failf "async trace violation: %s (+%d more)"
        (Format.asprintf "%a" Check.pp_violation v)
        (List.length rest)
  | Error [] -> assert false);
  match Hp.collector_counters t with
  | None -> Alcotest.fail "async HP has no collector"
  | Some k ->
      Alcotest.(check bool) "collector saw the handoffs" true
        (k.Collector.handoffs > 0)

(* --- HP: stalled collector degrades to bounded inline reclamation -------- *)

let test_hp_stalled_collector_inline_fallback () =
  Fault.reset ();
  let cfg =
    { base with reclaim_threshold = 8; async_reclaim = true;
      handoff_capacity = 1 }
  in
  let t = Hp.create ~config:cfg () in
  let h = Hp.register t in
  Fault.arm ~point:Fault.Collector ~action:Fault.Stall ();
  Fault.await_stalled ();
  for _ = 1 to 200 do
    Hp.retire h (Mem.make (Hp.stats t))
  done;
  (match Hp.collector_counters t with
  | None -> Alcotest.fail "async HP has no collector"
  | Some k ->
      (* the requested capacity of 1 is clamped to the 2-cell minimum; the
         stalled ring fills, every further threshold crossing falls back
         inline, and the baseline scans steal the queued bags back out —
         so the ring cycles (handoffs keep landing) and no handed-off bag
         ever waits on the stalled domain *)
      Alcotest.(check bool) "handoffs landed" true (k.Collector.handoffs >= 2);
      Alcotest.(check bool) "fallbacks counted" true (k.Collector.fallbacks > 0);
      Alcotest.(check bool) "queued bags stolen into inline scans" true
        (k.Collector.steals > 0);
      Alcotest.(check int) "stall means the collector itself drained nothing"
        0 k.Collector.drained_bags);
  let peak = Stats.unreclaimed (Hp.stats t) in
  if peak > 64 then
    Alcotest.failf "garbage %d not bounded by the inline fallback" peak;
  Fault.release ();
  Hp.flush h;
  Hp.unregister h;
  Hp.shutdown t;
  let survivor = Hp.register t in
  Hp.flush survivor;
  Alcotest.(check int) "drains to zero once released" 0
    (Stats.unreclaimed (Hp.stats t));
  Hp.unregister survivor;
  Fault.reset ()

(* --- HP: dead collector, queued bags salvaged, no double free ------------ *)

let test_hp_collector_kill_salvage () =
  Fault.reset ();
  let cfg =
    { base with reclaim_threshold = 8; async_reclaim = true;
      handoff_capacity = 2 }
  in
  let t = Hp.create ~config:cfg () in
  let h = Hp.register t in
  Fault.arm ~point:Fault.Collector ~action:Fault.Kill ~after:3 ();
  (* the collector hits the point on every loop iteration, so the kill
     fires on its own; retire meanwhile to race handoffs against it *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Fault.fired ())) && Unix.gettimeofday () < deadline do
    Hp.retire h (Mem.make (Hp.stats t))
  done;
  Alcotest.(check bool) "collector killed" true (Fault.fired ());
  for _ = 1 to 160 do
    Hp.retire h (Mem.make (Hp.stats t))
  done;
  (match Hp.collector_counters t with
  | None -> Alcotest.fail "async HP has no collector"
  | Some k ->
      Alcotest.(check bool) "mutator fell back inline after the death" true
        (k.Collector.fallbacks > 0));
  Hp.flush h;
  Hp.unregister h;
  (* shutdown salvages anything the dead collector left queued or pending *)
  Hp.shutdown t;
  let survivor = Hp.register t in
  Hp.flush survivor;
  Alcotest.(check int) "all garbage salvaged and freed" 0
    (Stats.unreclaimed (Hp.stats t));
  Alcotest.(check int) "no block lost, none freed twice"
    (Stats.allocated (Hp.stats t))
    (Stats.freed (Hp.stats t));
  Hp.unregister survivor;
  Fault.reset ()

(* --- every scheme: async smoke, multi-domain churn drains to zero -------- *)

let async_smoke (module S : Smr.Smr_intf.S) () =
  Fault.reset ();
  let cfg =
    { base with reclaim_threshold = 16; async_reclaim = true;
      handoff_capacity = 4 }
  in
  let t = S.create ~config:cfg () in
  ignore
    (Pool.run ~n:2 (fun _ ->
         let h = S.register t in
         for _ = 1 to 400 do
           S.retire h (Mem.make (S.stats t))
         done;
         S.flush h;
         S.unregister h));
  S.shutdown t;
  let survivor = S.register t in
  S.flush survivor;
  S.flush survivor;
  S.flush survivor;
  Alcotest.(check int)
    (S.name ^ ": zero residue after shutdown")
    0
    (Stats.unreclaimed (S.stats t));
  S.unregister survivor

(* Inline mode must be byte-for-byte unaffected: flag off, no collector. *)
let test_flag_off_no_collector () =
  let t = Hp.create ~config:base () in
  Alcotest.(check bool) "no collector when async_reclaim is off" true
    (Hp.collector_counters t = None);
  let h = Hp.register t in
  for _ = 1 to 100 do
    Hp.retire h (Mem.make (Hp.stats t))
  done;
  Hp.flush h;
  Alcotest.(check int) "inline path drains as before" 0
    (Stats.unreclaimed (Hp.stats t));
  Hp.unregister h;
  Hp.shutdown t

(* --- introspection: collector_stats gauges pinned under a forced stall --- *)

let test_collector_stats_under_stall () =
  Fault.reset ();
  let cfg =
    { base with reclaim_threshold = 8; async_reclaim = true;
      handoff_capacity = 4 }
  in
  let t = Hp.create ~config:cfg () in
  let h = Hp.register t in
  (match Hp.collector_stats t with
  | None -> Alcotest.fail "async HP has no collector stats"
  | Some st ->
      Alcotest.(check int) "capacity as configured" 4
        st.Collector.ring_capacity;
      Alcotest.(check int) "ring empty at rest" 0 st.Collector.ring_occupancy;
      Alcotest.(check int) "no pending garbage at rest" 0 st.Collector.pending;
      Alcotest.(check int) "no drains recorded" 0
        st.Collector.drain_duration.Collector.count);
  Fault.arm ~point:Fault.Collector ~action:Fault.Stall ();
  Fault.await_stalled ();
  for _ = 1 to 200 do
    Hp.retire h (Mem.make (Hp.stats t))
  done;
  (* quiescent now: the retire loop is done, the collector is parked, so
     the gauges are stable and must agree with the counters *)
  (match Hp.collector_stats t with
  | None -> Alcotest.fail "stats gone mid-run"
  | Some st ->
      let c = st.Collector.ctrs in
      Alcotest.(check bool) "handoffs landed" true (c.Collector.handoffs > 0);
      Alcotest.(check int) "stalled collector completed no drains" 0
        c.Collector.drains;
      Alcotest.(check int) "occupancy = handoffs - steals"
        (c.Collector.handoffs - c.Collector.steals)
        st.Collector.ring_occupancy;
      Alcotest.(check int) "nothing pending on a parked collector" 0
        st.Collector.pending;
      Alcotest.(check int) "empty drain-duration histogram" 0
        st.Collector.drain_duration.Collector.count;
      Alcotest.(check int) "empty garbage-age histogram" 0
        st.Collector.garbage_age.Collector.count);
  Fault.release ();
  Hp.flush h;
  Hp.unregister h;
  Hp.shutdown t;
  let survivor = Hp.register t in
  Hp.flush survivor;
  Alcotest.(check int) "drains to zero once released" 0
    (Stats.unreclaimed (Hp.stats t));
  Hp.unregister survivor;
  Fault.reset ()

let test_collector_stats_after_drains () =
  Fault.reset ();
  let cfg =
    { base with reclaim_threshold = 8; async_reclaim = true;
      handoff_capacity = 4 }
  in
  let t = Hp.create ~config:cfg () in
  let h = Hp.register t in
  for _ = 1 to 200 do
    Hp.retire h (Mem.make (Hp.stats t))
  done;
  Hp.flush h;
  (* wait (bounded) for the collector to chew through what was handed off *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec settle () =
    match Hp.collector_stats t with
    | Some st
      when st.Collector.ctrs.Collector.drained_bags
           + st.Collector.ctrs.Collector.steals
           >= st.Collector.ctrs.Collector.handoffs ->
        st
    | _ when Unix.gettimeofday () > deadline ->
        Alcotest.fail "collector never drained its ring"
    | _ ->
        Unix.sleepf 0.01;
        settle ()
  in
  let st = settle () in
  let c = st.Collector.ctrs in
  if c.Collector.drains > 0 then begin
    let hist = st.Collector.drain_duration in
    Alcotest.(check int) "one duration sample per drain cycle"
      c.Collector.drains hist.Collector.count;
    (match List.rev hist.Collector.buckets with
    | (_, last) :: _ ->
        Alcotest.(check int) "buckets cumulative to count" hist.Collector.count
          last
    | [] -> Alcotest.fail "no duration buckets");
    Alcotest.(check bool) "garbage ages observed" true
      (st.Collector.garbage_age.Collector.count > 0)
  end;
  Alcotest.(check bool) "no stats on inline schemes" true
    (Hp.collector_stats (Hp.create ~config:base ()) = None);
  Hp.unregister h;
  Hp.shutdown t

let () =
  Alcotest.run "collector"
    [
      ( "policy",
        [ Alcotest.test_case "adaptive threshold clamps" `Quick
            test_adapt_threshold ] );
      ( "bags",
        [
          Alcotest.test_case "growth past initial capacity" `Quick
            test_bag_growth;
          Alcotest.test_case "transfer appends and empties" `Quick
            test_bag_transfer;
          Alcotest.test_case "salvage compacts in place" `Quick
            test_bag_salvage_in_place;
        ] );
      ( "ring",
        [
          Alcotest.test_case "handoff, drain, clean shutdown" `Quick
            test_ring_basic;
          Alcotest.test_case "full ring rejects; queued bags recovered" `Quick
            test_ring_full_rejects_and_recovers;
        ] );
      ( "hp",
        [
          Alcotest.test_case "clean shutdown drains all bags" `Quick
            test_hp_async_clean_shutdown;
          Alcotest.test_case "stalled collector: bounded inline fallback"
            `Quick test_hp_stalled_collector_inline_fallback;
          Alcotest.test_case "killed collector: salvage, no double free"
            `Quick test_hp_collector_kill_salvage;
          Alcotest.test_case "stats gauges pinned under forced stall" `Quick
            test_collector_stats_under_stall;
          Alcotest.test_case "drain histograms filled after real cycles" `Quick
            test_collector_stats_after_drains;
          Alcotest.test_case "flag off: no collector, inline unchanged" `Quick
            test_flag_off_no_collector;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "HP++ async smoke" `Quick
            (async_smoke (module Hp_plus));
          Alcotest.test_case "EBR async smoke" `Quick
            (async_smoke (module Ebr));
          Alcotest.test_case "PEBR async smoke" `Quick
            (async_smoke (module Pebr));
        ] );
    ]
