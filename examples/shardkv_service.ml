(* The shardkv service layer as an application: a sharded KV store serving
   a skewed (Zipfian) read-heavy workload from several worker domains, with
   per-operation latency percentiles and the SMR garbage counters in one
   snapshot. Runs the same service twice — HP++ then EBR — so the latency
   and memory trade-off of the paper's schemes shows up at the service
   level, not just in closed microbenchmarks.

     dune exec examples/shardkv_service.exe -- [domains] [seconds]        *)

module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng
module Key_dist = Service.Key_dist

let domains = try int_of_string Sys.argv.(1) with _ -> 4
let seconds = try float_of_string Sys.argv.(2) with _ -> 0.5
let key_space = 8192

module Serve (S : Smr.Smr_intf.S) = struct
  module KV = Service.Shardkv.Make (S)

  let run () =
    let kv = KV.create ~shards:8 () in
    (* warm the store with half the key space *)
    KV.load kv (Array.init (key_space / 2) (fun i -> (i * 2, i * 2)));
    KV.detach kv;
    let t0 = Unix.gettimeofday () in
    let _ =
      Pool.run_timed ~n:domains ~duration:seconds (fun i ~stop ->
          let rng = Rng.create ~seed:(0xd0d0 + i) in
          let dist = Key_dist.zipfian key_space in
          while not (stop ()) do
            let key = Key_dist.next dist rng in
            match Rng.below rng 10 with
            | 0 -> ignore (KV.put kv key key)
            | 1 -> ignore (KV.delete kv key)
            | 2 -> ignore (KV.multi_get kv [| key; key + 1; key + 2; key + 3 |])
            | _ -> ignore (KV.get kv key)
          done;
          KV.detach kv)
    in
    let wall = Unix.gettimeofday () -. t0 in
    ignore (KV.validate kv);
    Format.printf "%a@." Service.Service_stats.pp (KV.snapshot kv ~elapsed:wall)
end

let () =
  Printf.printf "shardkv_service: %d domains, %.1fs per scheme, %d keys\n%!"
    domains seconds key_space;
  let module A = Serve (Hp_plus) in
  A.run ();
  let module B = Serve (Ebr) in
  B.run ();
  print_endline "shardkv_service ok"
